// "ndft.machine.v1": the JSON hardware description of the NDP machine
// (M2NDP-style). A machine document parameterizes every SimObject of the
// simulated system — mesh geometry/links, per-stack NDP units and cores,
// L1s, HBM timing/geometry, SPM, SerDes — so hardware sweeps are data, not
// recompiles. Parsing is STRICT: unknown members are rejected (a typo'd
// parameter in a sweep must fail loudly, not silently run the default),
// while absent members inherit the Table-III defaults. to_json() emits
// every field explicitly; from_json(to_json(c)) reproduces c bitwise.

#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/str_util.hpp"
#include "ndp/ndp_system.hpp"

namespace ndft::ndp {
namespace {

constexpr const char* kMachineSchema = "ndft.machine.v1";

[[noreturn]] void bad(const std::string& what) {
  throw NdftError("machine config: " + what);
}

void require_object(const Json& j, const char* section) {
  if (j.type() != Json::Type::kObject) {
    bad(strformat("'%s' must be an object", section));
  }
}

std::uint64_t get_uint(const Json& j, const char* key) {
  if (j.type() != Json::Type::kUint && j.type() != Json::Type::kInt) {
    bad(strformat("'%s' must be a non-negative integer", key));
  }
  const std::int64_t v =
      j.type() == Json::Type::kInt ? j.as_int()
                                   : static_cast<std::int64_t>(j.as_uint());
  if (v < 0) bad(strformat("'%s' must be non-negative", key));
  return static_cast<std::uint64_t>(v);
}

double get_double(const Json& j, const char* key) {
  if (j.type() != Json::Type::kDouble && j.type() != Json::Type::kInt &&
      j.type() != Json::Type::kUint) {
    bad(strformat("'%s' must be a number", key));
  }
  return j.as_double();
}

bool get_bool(const Json& j, const char* key) {
  if (j.type() != Json::Type::kBool) {
    bad(strformat("'%s' must be a boolean", key));
  }
  return j.as_bool();
}

unsigned get_u32(const Json& j, const char* key) {
  const std::uint64_t v = get_uint(j, key);
  if (v > 0xffffffffull) bad(strformat("'%s' is out of range", key));
  return static_cast<unsigned>(v);
}

// ---- section parsers. Each starts from the caller's defaults, applies
// present keys, and rejects anything it does not know.

void parse_mesh(const Json& j, noc::MeshConfig& mesh) {
  require_object(j, "mesh");
  for (const auto& [key, value] : j.members()) {
    if (key == "width") mesh.width = get_u32(value, "mesh.width");
    else if (key == "height") mesh.height = get_u32(value, "mesh.height");
    else if (key == "link_gbps")
      mesh.link_gbps = get_double(value, "mesh.link_gbps");
    else if (key == "hop_latency_ps")
      mesh.hop_latency_ps = get_uint(value, "mesh.hop_latency_ps");
    else if (key == "packet_overhead")
      mesh.packet_overhead = get_uint(value, "mesh.packet_overhead");
    else if (key == "link_pj_per_bit")
      mesh.link_pj_per_bit = get_double(value, "mesh.link_pj_per_bit");
    else if (key == "link_queue")
      mesh.link_queue = get_uint(value, "mesh.link_queue");
    else bad("unknown key 'mesh." + key + "'");
  }
  if (mesh.width == 0 || mesh.height == 0) bad("mesh must have nodes");
  if (mesh.link_gbps <= 0.0) bad("mesh.link_gbps must be positive");
  if (mesh.link_queue == 0) bad("mesh.link_queue must be positive");
}

void parse_core(const Json& j, cpu::CoreConfig& core) {
  require_object(j, "stack.core");
  for (const auto& [key, value] : j.members()) {
    if (key == "freq_mhz") core.freq_mhz = get_uint(value, "core.freq_mhz");
    else if (key == "issue_width")
      core.issue_width = get_u32(value, "core.issue_width");
    else if (key == "flops_per_cycle")
      core.flops_per_cycle = get_double(value, "core.flops_per_cycle");
    else if (key == "max_outstanding")
      core.max_outstanding = get_u32(value, "core.max_outstanding");
    else bad("unknown key 'stack.core." + key + "'");
  }
  if (core.freq_mhz == 0) bad("core.freq_mhz must be positive");
  if (core.max_outstanding == 0) bad("core.max_outstanding must be positive");
}

void parse_cache(const Json& j, cache::CacheConfig& cache) {
  require_object(j, "stack.l1");
  for (const auto& [key, value] : j.members()) {
    if (key == "size_bytes")
      cache.size_bytes = get_uint(value, "l1.size_bytes");
    else if (key == "ways") cache.ways = get_u32(value, "l1.ways");
    else if (key == "line_bytes")
      cache.line_bytes = get_uint(value, "l1.line_bytes");
    else if (key == "hit_latency_ps")
      cache.hit_latency_ps = get_uint(value, "l1.hit_latency_ps");
    else if (key == "mshrs") cache.mshrs = get_u32(value, "l1.mshrs");
    else if (key == "prefetch")
      cache.prefetch = get_bool(value, "l1.prefetch");
    else if (key == "prefetch_degree")
      cache.prefetch_degree = get_u32(value, "l1.prefetch_degree");
    else bad("unknown key 'stack.l1." + key + "'");
  }
  if (cache.ways == 0 || cache.line_bytes == 0 ||
      cache.size_bytes < cache.line_bytes * cache.ways) {
    bad("l1 geometry is inconsistent");
  }
}

void parse_dram_timing(const Json& j, mem::DramTiming& timing) {
  require_object(j, "stack.dram.timing");
  // A preset rebases everything before field overrides apply, so the
  // preset key is handled first regardless of member order.
  if (const Json* preset = j.find("preset")) {
    const std::string& name = preset->as_string();
    if (name == "ddr4_2400") timing = mem::DramTiming::ddr4_2400();
    else if (name == "hbm2_1000") timing = mem::DramTiming::hbm2_1000();
    else bad("unknown dram timing preset '" + name + "'");
  }
  for (const auto& [key, value] : j.members()) {
    if (key == "preset") continue;
    else if (key == "tCK_ps") timing.tCK_ps = get_uint(value, "tCK_ps");
    else if (key == "CL") timing.CL = get_u32(value, "CL");
    else if (key == "CWL") timing.CWL = get_u32(value, "CWL");
    else if (key == "tRCD") timing.tRCD = get_u32(value, "tRCD");
    else if (key == "tRP") timing.tRP = get_u32(value, "tRP");
    else if (key == "tRAS") timing.tRAS = get_u32(value, "tRAS");
    else if (key == "tRC") timing.tRC = get_u32(value, "tRC");
    else if (key == "tCCD") timing.tCCD = get_u32(value, "tCCD");
    else if (key == "tRRD") timing.tRRD = get_u32(value, "tRRD");
    else if (key == "tFAW") timing.tFAW = get_u32(value, "tFAW");
    else if (key == "tWR") timing.tWR = get_u32(value, "tWR");
    else if (key == "tWTR") timing.tWTR = get_u32(value, "tWTR");
    else if (key == "tRTP") timing.tRTP = get_u32(value, "tRTP");
    else if (key == "tREFI") timing.tREFI = get_u32(value, "tREFI");
    else if (key == "tRFC") timing.tRFC = get_u32(value, "tRFC");
    else if (key == "burst_length")
      timing.burst_length = get_u32(value, "burst_length");
    else if (key == "bus_width_bits")
      timing.bus_width_bits = get_u32(value, "bus_width_bits");
    else bad("unknown key 'stack.dram.timing." + key + "'");
  }
  if (timing.tCK_ps == 0) bad("dram timing tCK_ps must be positive");
  if (timing.burst_length == 0 || timing.bus_width_bits < 8) {
    bad("dram timing burst/bus geometry is inconsistent");
  }
}

void parse_dram_geometry(const Json& j, mem::DramGeometry& geometry) {
  require_object(j, "stack.dram.geometry");
  if (const Json* preset = j.find("preset")) {
    const std::string& name = preset->as_string();
    if (name == "ddr4_16gb_channel") {
      geometry = mem::DramGeometry::ddr4_16gb_channel();
    } else if (name == "hbm2_512mb_channel") {
      geometry = mem::DramGeometry::hbm2_512mb_channel();
    } else {
      bad("unknown dram geometry preset '" + name + "'");
    }
  }
  for (const auto& [key, value] : j.members()) {
    if (key == "preset") continue;
    else if (key == "banks") geometry.banks = get_u32(value, "banks");
    else if (key == "rows") geometry.rows = get_u32(value, "rows");
    else if (key == "row_bytes")
      geometry.row_bytes = get_uint(value, "row_bytes");
    else bad("unknown key 'stack.dram.geometry." + key + "'");
  }
  if (geometry.banks == 0 || geometry.rows == 0 || geometry.row_bytes == 0) {
    bad("dram geometry must be non-empty");
  }
}

void parse_dram(const Json& j, mem::DramConfig& dram) {
  require_object(j, "stack.dram");
  for (const auto& [key, value] : j.members()) {
    if (key == "timing") parse_dram_timing(value, dram.timing);
    else if (key == "geometry") parse_dram_geometry(value, dram.geometry);
    else if (key == "channels")
      dram.channels = get_u32(value, "dram.channels");
    else if (key == "line_bytes")
      dram.line_bytes = get_uint(value, "dram.line_bytes");
    else if (key == "page_policy") {
      const std::string& policy = value.as_string();
      if (policy == "open") dram.page_policy = mem::PagePolicy::kOpen;
      else if (policy == "closed") dram.page_policy = mem::PagePolicy::kClosed;
      else bad("dram.page_policy must be \"open\" or \"closed\"");
    } else if (key == "access_latency_ps")
      dram.access_latency_ps = get_uint(value, "dram.access_latency_ps");
    else if (key == "queue_depth")
      dram.queue_depth = get_uint(value, "dram.queue_depth");
    else bad("unknown key 'stack.dram." + key + "'");
  }
  if (dram.channels == 0) bad("dram.channels must be positive");
  if (dram.line_bytes == 0) bad("dram.line_bytes must be positive");
  if (dram.queue_depth == 0) bad("dram.queue_depth must be positive");
}

void parse_spm(const Json& j, SpmConfig& spm) {
  require_object(j, "stack.spm");
  for (const auto& [key, value] : j.members()) {
    if (key == "capacity") spm.capacity = get_uint(value, "spm.capacity");
    else if (key == "access_latency_ps")
      spm.access_latency_ps = get_uint(value, "spm.access_latency_ps");
    else if (key == "bandwidth_gbps")
      spm.bandwidth_gbps = get_double(value, "spm.bandwidth_gbps");
    else if (key == "port_queue")
      spm.port_queue = get_uint(value, "spm.port_queue");
    else bad("unknown key 'stack.spm." + key + "'");
  }
  if (spm.capacity == 0) bad("spm.capacity must be positive");
  if (spm.bandwidth_gbps <= 0.0) bad("spm.bandwidth_gbps must be positive");
  if (spm.port_queue == 0) bad("spm.port_queue must be positive");
}

void parse_stack(const Json& j, NdpStackConfig& stack) {
  require_object(j, "stack");
  for (const auto& [key, value] : j.members()) {
    if (key == "units") stack.units = get_u32(value, "stack.units");
    else if (key == "cores_per_unit")
      stack.cores_per_unit = get_u32(value, "stack.cores_per_unit");
    else if (key == "core") parse_core(value, stack.core);
    else if (key == "l1") parse_cache(value, stack.l1);
    else if (key == "dram") parse_dram(value, stack.dram);
    else if (key == "spm") parse_spm(value, stack.spm);
    else bad("unknown key 'stack." + key + "'");
  }
  if (stack.units == 0 || stack.cores_per_unit == 0) {
    bad("stack must have at least one core");
  }
}

Json mesh_to_json(const noc::MeshConfig& mesh) {
  Json j = Json::object();
  j.set("width", mesh.width);
  j.set("height", mesh.height);
  j.set("link_gbps", mesh.link_gbps);
  j.set("hop_latency_ps", mesh.hop_latency_ps);
  j.set("packet_overhead", mesh.packet_overhead);
  j.set("link_pj_per_bit", mesh.link_pj_per_bit);
  j.set("link_queue", static_cast<std::uint64_t>(mesh.link_queue));
  return j;
}

Json core_to_json(const cpu::CoreConfig& core) {
  Json j = Json::object();
  j.set("freq_mhz", core.freq_mhz);
  j.set("issue_width", core.issue_width);
  j.set("flops_per_cycle", core.flops_per_cycle);
  j.set("max_outstanding", core.max_outstanding);
  return j;
}

Json cache_to_json(const cache::CacheConfig& cache) {
  Json j = Json::object();
  j.set("size_bytes", cache.size_bytes);
  j.set("ways", cache.ways);
  j.set("line_bytes", cache.line_bytes);
  j.set("hit_latency_ps", cache.hit_latency_ps);
  j.set("mshrs", cache.mshrs);
  j.set("prefetch", cache.prefetch);
  j.set("prefetch_degree", cache.prefetch_degree);
  return j;
}

Json dram_to_json(const mem::DramConfig& dram) {
  Json timing = Json::object();
  timing.set("tCK_ps", dram.timing.tCK_ps);
  timing.set("CL", dram.timing.CL);
  timing.set("CWL", dram.timing.CWL);
  timing.set("tRCD", dram.timing.tRCD);
  timing.set("tRP", dram.timing.tRP);
  timing.set("tRAS", dram.timing.tRAS);
  timing.set("tRC", dram.timing.tRC);
  timing.set("tCCD", dram.timing.tCCD);
  timing.set("tRRD", dram.timing.tRRD);
  timing.set("tFAW", dram.timing.tFAW);
  timing.set("tWR", dram.timing.tWR);
  timing.set("tWTR", dram.timing.tWTR);
  timing.set("tRTP", dram.timing.tRTP);
  timing.set("tREFI", dram.timing.tREFI);
  timing.set("tRFC", dram.timing.tRFC);
  timing.set("burst_length", dram.timing.burst_length);
  timing.set("bus_width_bits", dram.timing.bus_width_bits);
  Json geometry = Json::object();
  geometry.set("banks", dram.geometry.banks);
  geometry.set("rows", dram.geometry.rows);
  geometry.set("row_bytes", dram.geometry.row_bytes);
  Json j = Json::object();
  j.set("timing", std::move(timing));
  j.set("geometry", std::move(geometry));
  j.set("channels", dram.channels);
  j.set("line_bytes", dram.line_bytes);
  j.set("page_policy",
        dram.page_policy == mem::PagePolicy::kOpen ? "open" : "closed");
  j.set("access_latency_ps", dram.access_latency_ps);
  j.set("queue_depth", static_cast<std::uint64_t>(dram.queue_depth));
  return j;
}

Json spm_to_json(const SpmConfig& spm) {
  Json j = Json::object();
  j.set("capacity", spm.capacity);
  j.set("access_latency_ps", spm.access_latency_ps);
  j.set("bandwidth_gbps", spm.bandwidth_gbps);
  j.set("port_queue", static_cast<std::uint64_t>(spm.port_queue));
  return j;
}

Json stack_to_json(const NdpStackConfig& stack) {
  Json j = Json::object();
  j.set("units", stack.units);
  j.set("cores_per_unit", stack.cores_per_unit);
  j.set("core", core_to_json(stack.core));
  j.set("l1", cache_to_json(stack.l1));
  j.set("dram", dram_to_json(stack.dram));
  j.set("spm", spm_to_json(stack.spm));
  return j;
}

}  // namespace

NdpSystemConfig NdpSystemConfig::from_json(const Json& j) {
  require_object(j, "machine");
  const Json* schema = j.find("schema");
  if (schema == nullptr || schema->type() != Json::Type::kString ||
      schema->as_string() != kMachineSchema) {
    bad(strformat("schema must be \"%s\"", kMachineSchema));
  }
  NdpSystemConfig config = NdpSystemConfig::table3();
  for (const auto& [key, value] : j.members()) {
    if (key == "schema") continue;
    else if (key == "mesh") parse_mesh(value, config.mesh);
    else if (key == "stack") parse_stack(value, config.stack);
    else if (key == "cpu_links")
      config.cpu_links = get_u32(value, "cpu_links");
    else if (key == "cpu_link_gbps")
      config.cpu_link_gbps = get_double(value, "cpu_link_gbps");
    else if (key == "serdes_latency_ps")
      config.serdes_latency_ps = get_uint(value, "serdes_latency_ps");
    else if (key == "request_bytes")
      config.request_bytes = get_uint(value, "request_bytes");
    else if (key == "response_overhead")
      config.response_overhead = get_uint(value, "response_overhead");
    else if (key == "cpu_link_queue")
      config.cpu_link_queue = get_uint(value, "cpu_link_queue");
    else bad("unknown key '" + key + "'");
  }
  if (config.cpu_links == 0) bad("cpu_links must be positive");
  if (config.cpu_link_gbps <= 0.0) bad("cpu_link_gbps must be positive");
  if (config.cpu_link_queue == 0) bad("cpu_link_queue must be positive");
  return config;
}

Json NdpSystemConfig::to_json() const {
  Json j = Json::object();
  j.set("schema", kMachineSchema);
  j.set("mesh", mesh_to_json(mesh));
  j.set("stack", stack_to_json(stack));
  j.set("cpu_links", cpu_links);
  j.set("cpu_link_gbps", cpu_link_gbps);
  j.set("serdes_latency_ps", serdes_latency_ps);
  j.set("request_bytes", request_bytes);
  j.set("response_overhead", response_overhead);
  j.set("cpu_link_queue", static_cast<std::uint64_t>(cpu_link_queue));
  return j;
}

}  // namespace ndft::ndp
