#include "ndp/ndp_system.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"
#include "mem/energy.hpp"

namespace ndft::ndp {

NdpSystemConfig NdpSystemConfig::table3() {
  return NdpSystemConfig{};  // defaults encode Table III
}

NdpSystem::NdpSystem(const std::string& name, sim::EventQueue& queue,
                     const NdpSystemConfig& config)
    : config_(config), queue_(&queue) {
  mesh_ = std::make_unique<noc::Mesh>(name + ".mesh", queue, config.mesh);
  const unsigned stacks = config.stacks();
  stacks_.reserve(stacks);
  for (unsigned i = 0; i < stacks; ++i) {
    stacks_.push_back(std::make_unique<NdpStack>(
        name + ".stack" + std::to_string(i), queue, config.stack));
  }
  cpu_port_ = std::make_unique<CpuPort>(*this);
  cpu_link_free_.assign(std::max(config.cpu_links, 1u), 0);
}

unsigned NdpSystem::stack_of_addr(Addr addr) const noexcept {
  // Line-interleaved across stacks: consecutive 64 B lines round-robin, so
  // CPU streaming spreads over all stacks and channels.
  return static_cast<unsigned>((addr / 64) % stacks_.size());
}

Addr NdpSystem::local_addr(Addr addr) const noexcept {
  const Addr line = addr / 64;
  const Addr offset = addr % 64;
  return (line / stacks_.size()) * 64 + offset;
}

unsigned NdpSystem::entry_node_for(unsigned stack) const noexcept {
  // The CPU package connects at the four corners of the 4x4 mesh; traffic
  // enters at the corner nearest the destination stack.
  const unsigned w = config_.mesh.width;
  const unsigned h = config_.mesh.height;
  const unsigned corners[4] = {0, w - 1, (h - 1) * w, h * w - 1};
  unsigned best = corners[0];
  unsigned best_hops = mesh_->hops(corners[0], stack);
  for (unsigned i = 1; i < 4; ++i) {
    const unsigned hop = mesh_->hops(corners[i], stack);
    if (hop < best_hops) {
      best = corners[i];
      best_hops = hop;
    }
  }
  return best;
}

void NdpSystem::CpuPort::access(mem::MemRequest req) {
  NdpSystem& sys = *owner_;
  const unsigned stack = sys.stack_of_addr(req.addr);
  const unsigned entry = sys.entry_node_for(stack);
  const Addr local = sys.local_addr(req.addr);
  const Bytes data_bytes = req.size;
  const bool is_write = req.is_write;

  // Pick the least-loaded SerDes link and pay serialization + latency.
  auto& link_free = sys.cpu_link_free_;
  const std::size_t link =
      static_cast<std::size_t>(std::min_element(link_free.begin(),
                                                link_free.end()) -
                               link_free.begin());
  const Bytes outbound = sys.config_.request_bytes +
                         (is_write ? data_bytes : 0);
  const TimePs serialization =
      transfer_time_ps(outbound, sys.config_.cpu_link_gbps);
  const TimePs start = std::max(sys.queue_->now(), link_free[link]);
  link_free[link] = start + serialization;
  const TimePs at_mesh =
      start + serialization + sys.config_.serdes_latency_ps;

  auto callback = std::move(req.on_complete);
  sys.queue_->schedule_at(at_mesh, [&sys, stack, entry, local, data_bytes,
                                    is_write,
                                    callback = std::move(callback)]() mutable {
    // Hop across the mesh to the owning stack.
    sys.mesh_->send(entry, stack, sys.config_.request_bytes,
                    [&sys, stack, entry, local, data_bytes, is_write,
                     callback = std::move(callback)](TimePs) mutable {
      mem::MemRequest dram_req;
      dram_req.addr = local;
      dram_req.size = data_bytes;
      dram_req.is_write = is_write;
      if (is_write) {
        // Posted write: complete once the stack DRAM accepts it.
        dram_req.on_complete = nullptr;
        sys.stacks_[stack]->dram().access(std::move(dram_req));
        if (callback) {
          callback(sys.queue_->now());
        }
        return;
      }
      dram_req.on_complete = [&sys, stack, entry, data_bytes,
                              callback =
                                  std::move(callback)](TimePs) mutable {
        // Data response crosses the mesh back and exits over SerDes.
        sys.mesh_->send(
            stack, entry, data_bytes + sys.config_.response_overhead,
            [&sys, callback = std::move(callback)](TimePs) mutable {
              const TimePs done =
                  sys.queue_->now() + sys.config_.serdes_latency_ps;
              if (callback) {
                sys.queue_->schedule_at(
                    done, [callback = std::move(callback), done]() {
                      callback(done);
                    });
              }
            });
      };
      sys.stacks_[stack]->dram().access(std::move(dram_req));
    });
  });
}

void NdpSystem::run(const std::vector<const cpu::Trace*>& traces,
                    std::function<void()> on_done) {
  NDFT_REQUIRE(!traces.empty(), "no traces to run");
  NDFT_REQUIRE(traces.size() <= config_.total_cores(),
               "more traces than NDP cores");
  NDFT_REQUIRE(running_ == 0, "NDP system is already running a kernel");
  on_done_ = std::move(on_done);
  running_ = static_cast<unsigned>(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    NDFT_ASSERT(traces[i] != nullptr);
    // Round-robin across stacks: trace i runs in stack i % stacks, which
    // matches how the scheduler partitions data (stack-local slices).
    const unsigned stack = static_cast<unsigned>(i) % stack_count();
    const unsigned core_in_stack =
        static_cast<unsigned>(i) / stack_count() %
        stacks_[stack]->core_count();
    stacks_[stack]->core(core_in_stack).run_trace(traces[i], [this] {
      NDFT_ASSERT(running_ > 0);
      if (--running_ == 0 && on_done_) {
        auto done = std::move(on_done_);
        on_done_ = nullptr;
        done();
      }
    });
  }
}

void NdpSystem::flush_caches() {
  for (auto& stack : stacks_) {
    stack->flush_caches();
  }
}

void NdpSystem::invalidate_caches() {
  for (auto& stack : stacks_) {
    stack->invalidate_caches();
  }
}

double NdpSystem::dram_energy_nj() const {
  double total = 0.0;
  const mem::DramEnergy hbm = mem::DramEnergy::hbm2();
  for (const auto& stack : stacks_) {
    total += stack->dram().energy_nj(hbm);
  }
  return total;
}

double NdpSystem::dram_dynamic_energy_nj() const {
  double total = 0.0;
  const mem::DramEnergy hbm = mem::DramEnergy::hbm2();
  for (const auto& stack : stacks_) {
    total += stack->dram().dynamic_energy_nj(hbm);
  }
  return total;
}

double NdpSystem::dram_background_mw() const {
  const mem::DramEnergy hbm = mem::DramEnergy::hbm2();
  const TimePs trefi =
      config_.stack.dram.timing.tCK_ps * config_.stack.dram.timing.tREFI;
  return hbm.background_with_refresh_mw(trefi) *
         static_cast<double>(stacks_.size()) * config_.stack.dram.channels;
}

double NdpSystem::energy_nj() const {
  return dram_energy_nj() + mesh_->energy_nj();
}

void NdpSystem::collect_stats(const std::string& prefix,
                              sim::StatSet& out) const {
  out.merge_prefixed(prefix + ".mesh", mesh_->stats());
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    stacks_[i]->collect_stats(prefix + ".stack" + std::to_string(i), out);
  }
}

}  // namespace ndft::ndp
