#include "noc/mesh.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ndft::noc {

MeshConfig MeshConfig::table3() {
  return MeshConfig{};  // 4x4, 120 GB/s links, 4 ns hops
}

Mesh::Mesh(std::string name, sim::EventQueue& queue, const MeshConfig& config)
    : SimObject(std::move(name), queue), config_(config) {
  NDFT_REQUIRE(config.width > 0 && config.height > 0,
               "mesh must have at least one node");
  NDFT_REQUIRE(config.link_gbps > 0.0, "link bandwidth must be positive");
  links_.resize(static_cast<std::size_t>(config.stacks()) * 4);
}

unsigned Mesh::hops(unsigned src, unsigned dst) const {
  NDFT_REQUIRE(src < config_.stacks() && dst < config_.stacks(),
               "node id out of range");
  const int dx = static_cast<int>(node_x(dst)) - static_cast<int>(node_x(src));
  const int dy = static_cast<int>(node_y(dst)) - static_cast<int>(node_y(src));
  return static_cast<unsigned>(std::abs(dx) + std::abs(dy));
}

double Mesh::energy_nj() const noexcept {
  double link_bytes = 0.0;
  for (const Link& link : links_) {
    link_bytes += static_cast<double>(link.bytes);
  }
  return link_bytes * 8.0 * config_.link_pj_per_bit * 1e-3;  // pJ -> nJ
}

void Mesh::send(unsigned src, unsigned dst, Bytes bytes,
                DeliveryFn on_delivered) {
  NDFT_REQUIRE(src < config_.stacks() && dst < config_.stacks(),
               "node id out of range");
  const Bytes wire_bytes = bytes + config_.packet_overhead;
  const TimePs serialization =
      transfer_time_ps(wire_bytes, config_.link_gbps);
  bytes_sent_ += bytes;
  stats().add("messages");
  stats().add("bytes", static_cast<double>(bytes));

  TimePs head = now();
  if (src == dst) {
    head += config_.hop_latency_ps;
  } else {
    // XY routing: resolve x first, then y. The head flit reserves each
    // link; the body pipelines behind it (wormhole), so serialization is
    // paid once but every link stays busy for the full message duration.
    unsigned x = node_x(src);
    unsigned y = node_y(src);
    const unsigned dst_x = node_x(dst);
    const unsigned dst_y = node_y(dst);
    while (x != dst_x || y != dst_y) {
      unsigned node = y * config_.width + x;
      unsigned direction;
      if (x < dst_x) {
        direction = 0;
        ++x;
      } else if (x > dst_x) {
        direction = 1;
        --x;
      } else if (y < dst_y) {
        direction = 2;
        ++y;
      } else {
        direction = 3;
        --y;
      }
      Link& link = link_from(node, direction);
      const TimePs start = std::max(head, link.free_at);
      if (start > head) {
        stats().add("contention_ps", static_cast<double>(start - head));
      }
      link.free_at = start + serialization;
      link.bytes += wire_bytes;
      head = start + config_.hop_latency_ps;
    }
  }

  const TimePs arrival = head + serialization;
  if (on_delivered) {
    queue().schedule_at(arrival,
                        [cb = std::move(on_delivered), arrival] {
                          cb(arrival);
                        });
  }
}

}  // namespace ndft::noc
