// Cross-cutting property sweeps: invariants that must hold across whole
// configuration ranges rather than at single points — cache hit rates
// monotone in capacity, DRAM bandwidth monotone in channel count, mesh
// delivery monotone in load, scheduler estimates monotone in system size.

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "core/ndft_system.hpp"
#include "cpu/trace_gen.hpp"
#include "mem/dram_system.hpp"
#include "noc/mesh.hpp"
#include "runtime/sca.hpp"

namespace ndft {
namespace {

/// Backing memory answering after a fixed latency.
class StubMemory : public mem::MemoryPort {
 public:
  StubMemory(sim::EventQueue& queue, TimePs latency)
      : queue_(&queue), latency_(latency) {}
  void access(mem::MemRequest req) override {
    ++requests;
    if (req.on_complete) {
      auto cb = std::move(req.on_complete);
      queue_->schedule_after(latency_, [cb = std::move(cb), this] {
        cb(queue_->now());
      });
    }
  }
  unsigned requests = 0;

 private:
  sim::EventQueue* queue_;
  TimePs latency_;
};

/// Runs a blocked trace against one cache and returns its hit ratio.
double blocked_hit_ratio(Bytes cache_bytes, Bytes working_set) {
  sim::EventQueue queue;
  StubMemory memory(queue, 80000);
  cache::CacheConfig config;
  config.size_bytes = cache_bytes;
  config.ways = 8;
  config.mshrs = 16;
  cache::Cache cache("c", queue, config, memory);

  cpu::TraceParams params;
  params.bytes_read = working_set * 8;  // 8 sweeps
  params.working_set = working_set;
  params.pattern = AccessPattern::kBlocked;
  params.block_bytes = 16 * 1024;
  params.max_mem_ops = 20000;
  const cpu::Trace trace = cpu::generate_trace(params);
  for (const cpu::TraceOp& op : trace.ops) {
    if (op.kind == cpu::OpKind::kCompute) continue;
    mem::MemRequest req;
    req.addr = op.addr;
    req.size = 64;
    req.is_write = (op.kind == cpu::OpKind::kStore);
    cache.access(std::move(req));
    queue.run();
  }
  return cache.hit_ratio();
}

TEST(CachePropertyTest, HitRatioMonotoneInCapacity) {
  const Bytes working_set = 128 * 1024;
  double previous = -1.0;
  for (const Bytes size :
       {Bytes{8} << 10, Bytes{32} << 10, Bytes{128} << 10,
        Bytes{512} << 10}) {
    const double ratio = blocked_hit_ratio(size, working_set);
    EXPECT_GE(ratio, previous - 0.02)
        << "hit ratio dropped when growing the cache to " << size;
    previous = ratio;
  }
  // The largest cache holds the whole working set.
  EXPECT_GT(previous, 0.8);
}

/// Streaming bandwidth of a DRAM system in GB/s.
double stream_gbps(unsigned channels) {
  sim::EventQueue queue;
  mem::DramConfig config = mem::DramConfig::xeon_ddr4();
  config.channels = channels;
  config.access_latency_ps = 0;
  mem::DramSystem dram("d", queue, config);
  TimePs last = 0;
  const unsigned count = 8000;
  for (unsigned i = 0; i < count; ++i) {
    mem::MemRequest req;
    req.addr = Addr(i) * 64;
    req.size = 64;
    req.on_complete = [&last](TimePs at) { last = std::max(last, at); };
    dram.access(std::move(req));
  }
  queue.run();
  return static_cast<double>(count) * 64 / static_cast<double>(last) *
         1000.0;
}

TEST(DramPropertyTest, BandwidthScalesWithChannels) {
  const double one = stream_gbps(1);
  const double two = stream_gbps(2);
  const double four = stream_gbps(4);
  EXPECT_GT(two, one * 1.6);
  EXPECT_GT(four, two * 1.6);
}

TEST(MeshPropertyTest, MakespanMonotoneInLoad) {
  TimePs previous = 0;
  for (const Bytes per_pair : {Bytes{1} << 16, Bytes{1} << 18,
                               Bytes{1} << 20}) {
    sim::EventQueue queue;
    noc::Mesh mesh("m", queue, noc::MeshConfig::table3());
    TimePs last = 0;
    for (unsigned s = 0; s < 16; ++s) {
      for (unsigned d = 0; d < 16; ++d) {
        if (s == d) continue;
        mesh.send(s, d, per_pair,
                  [&last](TimePs at) { last = std::max(last, at); });
      }
    }
    queue.run();
    EXPECT_GT(last, previous);
    previous = last;
  }
}

TEST(MeshPropertyTest, EnergyProportionalToTraffic) {
  sim::EventQueue queue;
  noc::Mesh mesh("m", queue, noc::MeshConfig::table3());
  mesh.send(0, 15, 1 << 20, nullptr);
  queue.run();
  const double single = mesh.energy_nj();
  mesh.send(0, 15, 1 << 20, nullptr);
  queue.run();
  EXPECT_NEAR(mesh.energy_nj(), 2.0 * single, single * 0.01);
}

// Scheduler estimates across the full size ladder: totals must grow with
// the system, and the NDP side must win every memory-bound kernel once
// windows saturate.
class ScaSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScaSweepTest, EstimatesScaleAndClassify) {
  const std::size_t atoms = GetParam();
  const runtime::Sca sca(runtime::DeviceProfile::table3_cpu(),
                         runtime::DeviceProfile::table3_ndp());
  const dft::Workload w =
      dft::Workload::lrtddft_iteration(dft::SystemDims::silicon(atoms));
  for (const dft::KernelWork& k : w.kernels) {
    const runtime::KernelAnalysis a = sca.analyze(k);
    EXPECT_GE(a.est_cpu_ps, 0u);
    EXPECT_GE(a.est_ndp_ps, 0u);
    if (k.cls == KernelClass::kFft || k.cls == KernelClass::kFaceSplit ||
        k.cls == KernelClass::kAlltoall) {
      EXPECT_EQ(a.preferred, DeviceKind::kNdp) << k.name << " @" << atoms;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScaSweepTest,
                         ::testing::Values(16, 32, 64, 128, 256, 1024,
                                           2048));

TEST(WorkloadPropertyTest, CpuEstimateMonotoneInAtoms) {
  const runtime::Sca sca(runtime::DeviceProfile::xeon_baseline(),
                         runtime::DeviceProfile::table3_ndp());
  TimePs previous = 0;
  for (const std::size_t atoms : {16, 32, 64, 128, 256, 1024, 2048}) {
    const dft::Workload w =
        dft::Workload::lrtddft_iteration(dft::SystemDims::silicon(atoms));
    TimePs total = 0;
    for (const dft::KernelWork& k : w.kernels) {
      total += sca.estimate(k, sca.cpu());
    }
    EXPECT_GT(total, previous) << "Si_" << atoms;
    previous = total;
  }
}

TEST(TracePropertyTest, ScaleInvariantUnderSamplingBound) {
  // Total represented work is independent of the sampling bound.
  for (const std::size_t bound : {2000, 8000, 32000}) {
    cpu::TraceParams params;
    params.flops = 1ull << 28;
    params.bytes_read = 1ull << 30;
    params.working_set = 1ull << 24;
    params.max_mem_ops = bound;
    const cpu::Trace trace = cpu::generate_trace(params);
    const double represented =
        trace.scale * static_cast<double>(trace.total_bytes());
    EXPECT_NEAR(represented, static_cast<double>(params.bytes_read),
                static_cast<double>(params.bytes_read) * 0.05)
        << "bound " << bound;
  }
}

}  // namespace
}  // namespace ndft
