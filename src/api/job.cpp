#include "api/job.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/str_util.hpp"
#include "ndp/ndp_system.hpp"

namespace ndft::api {
namespace {

/// Ceiling on Monkhorst-Pack k-points per job: one dense eigensolve per
/// point, so an absurd grid is an absurd job.
constexpr std::size_t kMaxMpPoints = 65536;

void check_atoms(std::size_t atoms, std::vector<std::string>& errors) {
  if (atoms < 8 || atoms % 8 != 0) {
    errors.push_back(strformat(
        "atoms must be a positive multiple of 8 (got %zu)", atoms));
  }
}

void check_ecut(double ecut_ry, std::vector<std::string>& errors) {
  if (!(ecut_ry > 0.0)) {
    errors.push_back(strformat("ecut_ry must be positive (got %g)",
                               ecut_ry));
  }
}

void check_deadline(double deadline_ms, std::vector<std::string>& errors) {
  // 0 = unlimited; anything else must be a positive finite budget (NaN
  // fails both comparisons).
  if (!(deadline_ms >= 0.0) || std::isinf(deadline_ms)) {
    errors.push_back(strformat(
        "deadline_ms must be finite and non-negative (got %g)",
        deadline_ms));
  }
}

void check_machine(const std::optional<Json>& machine,
                   std::vector<std::string>& errors) {
  // Parse the machine document up front so a malformed hardware
  // description is a kInvalid refusal with the parser's message, never a
  // throw from inside the executor after the engine committed resources.
  if (!machine) return;
  try {
    (void)ndp::NdpSystemConfig::from_json(*machine);
  } catch (const NdftError& e) {
    errors.push_back(e.what());
  }
}

struct Validator {
  std::vector<std::string> errors;

  void operator()(const ScfJob& job) {
    check_deadline(job.deadline_ms, errors);
    check_atoms(job.atoms, errors);
    check_ecut(job.ecut_ry, errors);
    if (!(job.scf.mixing > 0.0 && job.scf.mixing <= 1.0)) {
      errors.push_back(strformat("scf.mixing must be in (0, 1] (got %g)",
                                 job.scf.mixing));
    }
    if (!(job.scf.tolerance > 0.0)) {
      errors.push_back(strformat("scf.tolerance must be positive (got %g)",
                                 job.scf.tolerance));
    }
    if (job.scf.max_iterations == 0) {
      errors.push_back("scf.max_iterations must be at least 1");
    }
  }

  void operator()(const BandStructureJob& job) {
    check_deadline(job.deadline_ms, errors);
    check_ecut(job.ecut_ry, errors);
    if (job.atoms != 0) {
      check_atoms(job.atoms, errors);
    }
    switch (job.sampling) {
      case BandStructureJob::Sampling::kPath:
        if (job.segments < 1) {
          errors.push_back("segments must be at least 1");
        }
        if (job.atoms != 0) {
          errors.push_back(
              "the FCC high-symmetry path applies to the primitive cell "
              "(atoms == 0); supercells sample a Monkhorst-Pack grid");
        }
        break;
      case BandStructureJob::Sampling::kMonkhorstPack: {
        std::size_t points = 1;
        bool dims_valid = true;
        for (const unsigned n : job.mp_grid) {
          if (n < 1) {
            errors.push_back("mp_grid divisions must be at least 1");
            dims_valid = false;
            break;
          }
          // Divide-side overflow guard: three 32-bit factors can wrap a
          // 64-bit product, so saturate above the cap instead.
          points = points > kMaxMpPoints / n ? kMaxMpPoints + 1
                                             : points * n;
        }
        if (dims_valid && points > kMaxMpPoints) {
          errors.push_back(strformat(
              "mp_grid requests more than the %zu k-point limit",
              kMaxMpPoints));
        }
        break;
      }
      case BandStructureJob::Sampling::kExplicit: {
        if (job.kpoints.empty()) {
          errors.push_back(
              "explicit sampling needs at least one entry in kpoints");
        }
        if (job.kpoints.size() > kMaxMpPoints) {
          errors.push_back(strformat(
              "kpoints requests more than the %zu k-point limit",
              kMaxMpPoints));
        }
        for (const BandStructureJob::KPointSpec& kp : job.kpoints) {
          // One finding is enough: shard sub-jobs carry thousands of
          // points and a flood of identical errors helps nobody.
          if (!(kp.weight > 0.0) || !std::isfinite(kp.weight)) {
            errors.push_back(strformat(
                "kpoints weights must be positive and finite (got %g)",
                kp.weight));
            break;
          }
          if (!std::isfinite(kp.k[0]) || !std::isfinite(kp.k[1]) ||
              !std::isfinite(kp.k[2])) {
            errors.push_back("kpoints coordinates must be finite");
            break;
          }
        }
        break;
      }
      default:
        errors.push_back("unknown sampling");
    }
    if (job.bands == 0) {
      errors.push_back("bands must be at least 1");
    }
    // Mirrors find_gap's valence >= 1 precondition: valence_bands == 0
    // would underflow the VBM index inside the solver.
    if (job.valence_bands == 0 || job.valence_bands >= job.bands) {
      errors.push_back(strformat(
          "valence_bands must be in [1, bands) (got %zu of %zu)",
          job.valence_bands, job.bands));
    }
  }

  void operator()(const LrtddftJob& job) {
    check_deadline(job.deadline_ms, errors);
    check_atoms(job.atoms, errors);
    check_ecut(job.ecut_ry, errors);
    if (job.config.conduction_window == 0) {
      errors.push_back("config.conduction_window must be at least 1");
    }
    if (!(job.config.spin_factor > 0.0)) {
      errors.push_back(strformat(
          "config.spin_factor must be positive (got %g)",
          job.config.spin_factor));
    }
  }

  void operator()(const SimulateJob& job) {
    check_deadline(job.deadline_ms, errors);
    check_atoms(job.atoms, errors);
    check_machine(job.machine, errors);
    switch (job.mode) {
      case core::ExecMode::kCpuBaseline:
      case core::ExecMode::kGpuBaseline:
      case core::ExecMode::kNdpOnly:
      case core::ExecMode::kNdft:
        break;
      default:
        errors.push_back("unknown execution mode");
    }
  }

  void operator()(const PlanJob& job) {
    check_deadline(job.deadline_ms, errors);
    check_atoms(job.atoms, errors);
    check_granularity(job.granularity);
    check_machine(job.machine, errors);
    if (!job.profile_override.empty() && job.profile_override.size() != 2) {
      errors.push_back(strformat(
          "profile_override must hold exactly [cpu, ndp] profiles "
          "(got %zu)", job.profile_override.size()));
    }
  }

  void operator()(const CoDesignJob& job) {
    check_deadline(job.deadline_ms, errors);
    check_granularity(job.granularity);
    check_machine(job.machine, errors);
    if (job.trace.events.empty()) {
      errors.push_back("trace must carry at least one recorded event");
      return;
    }
    bool has_work = false;
    for (const TraceEvent& event : job.trace.events) {
      if (event.flops != 0 || event.bytes != 0) has_work = true;
      if (event.host_ms < 0.0) {
        errors.push_back(strformat(
            "trace event '%s' has a negative host time",
            event.name.c_str()));
        return;
      }
    }
    if (!has_work) {
      errors.push_back("trace carries no schedulable kernel work");
    }
  }

  void check_granularity(runtime::Granularity granularity) {
    switch (granularity) {
      case runtime::Granularity::kInstruction:
      case runtime::Granularity::kBasicBlock:
      case runtime::Granularity::kFunction:
      case runtime::Granularity::kKernel:
        break;
      default:
        errors.push_back("unknown granularity");
    }
  }
};

}  // namespace

const char* job_kind(const JobRequest& request) noexcept {
  struct Namer {
    const char* operator()(const ScfJob&) const { return "scf"; }
    const char* operator()(const BandStructureJob&) const {
      return "band_structure";
    }
    const char* operator()(const LrtddftJob&) const { return "lrtddft"; }
    const char* operator()(const SimulateJob&) const { return "simulate"; }
    const char* operator()(const PlanJob&) const { return "plan"; }
    const char* operator()(const CoDesignJob&) const { return "codesign"; }
  };
  return std::visit(Namer{}, request);
}

std::vector<dft::KPoint> band_job_kpoints(const BandStructureJob& job,
                                          const dft::Crystal& crystal) {
  switch (job.sampling) {
    case BandStructureJob::Sampling::kPath:
      return dft::fcc_kpath(dft::kSiliconLatticeBohr, job.segments);
    case BandStructureJob::Sampling::kMonkhorstPack:
      // H(k) and H(-k) share a spectrum for the real EPM potential, so
      // the folded half-grid (partner weights doubled) yields the same
      // summary with half the eigensolves.
      return dft::fold_time_reversal(dft::monkhorst_pack(
          crystal, job.mp_grid[0], job.mp_grid[1], job.mp_grid[2]));
    case BandStructureJob::Sampling::kExplicit: {
      std::vector<dft::KPoint> path;
      path.reserve(job.kpoints.size());
      for (const BandStructureJob::KPointSpec& spec : job.kpoints) {
        dft::KPoint kp;
        kp.k = {spec.k[0], spec.k[1], spec.k[2]};
        kp.weight = spec.weight;
        kp.label = spec.label;
        path.push_back(std::move(kp));
      }
      return path;
    }
  }
  throw NdftError("unknown sampling");
}

double job_deadline_ms(const JobRequest& request) noexcept {
  return std::visit([](const auto& job) { return job.deadline_ms; },
                    request);
}

std::vector<std::string> validate(const JobRequest& request) {
  Validator validator;
  std::visit(validator, request);
  return std::move(validator.errors);
}

}  // namespace ndft::api
