#include "dft/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/math_util.hpp"

namespace ndft::dft {
namespace {

/// sqrt(a^2 + b^2) without destructive overflow.
double pythag(double a, double b) noexcept {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double ratio = absb / absa;
    return absa * std::sqrt(1.0 + ratio * ratio);
  }
  if (absb == 0.0) {
    return 0.0;
  }
  const double ratio = absa / absb;
  return absb * std::sqrt(1.0 + ratio * ratio);
}

double sign_of(double magnitude, double sign) noexcept {
  return sign >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (EISPACK tred2 lineage). On return `z` holds the accumulated orthogonal
/// transformation, `d` the diagonal and `e` the subdiagonal (e[0] unused).
void tred2(RealMatrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the transformation matrix.
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on a tridiagonal matrix with eigenvector
/// accumulation (EISPACK tql2 lineage). `d` holds eigenvalues on return.
void tql2(std::vector<double>& d, std::vector<double>& e, RealMatrix& z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    unsigned iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        NDFT_REQUIRE(iter++ < 50, "QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          e[i + 1] = r = pythag(f, g);
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

void gemm(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
          double alpha, double beta, bool transpose_a, bool transpose_b,
          OpCount* count) {
  const RealMatrix lhs_copy = transpose_a ? a.transposed() : RealMatrix{};
  const RealMatrix rhs_copy = transpose_b ? b.transposed() : RealMatrix{};
  const RealMatrix& A = transpose_a ? lhs_copy : a;
  const RealMatrix& B = transpose_b ? rhs_copy : b;

  const std::size_t m = A.rows();
  const std::size_t k = A.cols();
  const std::size_t n = B.cols();
  NDFT_REQUIRE(B.rows() == k, "gemm: inner dimensions must agree");
  if (c.rows() != m || c.cols() != n) {
    NDFT_REQUIRE(beta == 0.0, "gemm: beta != 0 requires a sized C");
    c = RealMatrix(m, n);
  }

  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c.row(i);
    if (beta == 0.0) {
      std::fill(crow, crow + n, 0.0);
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::size_t l = 0; l < k; ++l) {
      const double aval = alpha * A(i, l);
      if (aval == 0.0) continue;
      const double* brow = B.row(l);
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aval * brow[j];
      }
    }
  }
  if (count != nullptr) {
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm(const ComplexMatrix& a, const ComplexMatrix& b, ComplexMatrix& c,
          Complex alpha, Complex beta, bool conj_transpose_a,
          bool transpose_b, OpCount* count) {
  ComplexMatrix lhs_copy;
  if (conj_transpose_a) {
    lhs_copy = ComplexMatrix(a.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t cidx = 0; cidx < a.cols(); ++cidx) {
        lhs_copy(cidx, r) = std::conj(a(r, cidx));
      }
    }
  }
  ComplexMatrix rhs_copy;
  if (transpose_b) {
    rhs_copy = b.transposed();
  }
  const ComplexMatrix& A = conj_transpose_a ? lhs_copy : a;
  const ComplexMatrix& B = transpose_b ? rhs_copy : b;

  const std::size_t m = A.rows();
  const std::size_t k = A.cols();
  const std::size_t n = B.cols();
  NDFT_REQUIRE(B.rows() == k, "gemm: inner dimensions must agree");
  if (c.rows() != m || c.cols() != n) {
    NDFT_REQUIRE(beta == Complex{},
                 "gemm: beta != 0 requires a sized C");
    c = ComplexMatrix(m, n);
  }

  for (std::size_t i = 0; i < m; ++i) {
    Complex* crow = c.row(i);
    if (beta == Complex{}) {
      std::fill(crow, crow + n, Complex{});
    } else if (beta != Complex{1.0, 0.0}) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::size_t l = 0; l < k; ++l) {
      const Complex aval = alpha * A(i, l);
      if (aval == Complex{}) continue;
      const Complex* brow = B.row(l);
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aval * brow[j];
      }
    }
  }
  if (count != nullptr) {
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

EigenResult syev(const RealMatrix& symmetric, OpCount* count) {
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syev: matrix must be square");
  const std::size_t n = symmetric.rows();
  EigenResult result;
  result.eigenvectors = symmetric;  // tred2 works in place
  std::vector<double> d;
  std::vector<double> e;
  tred2(result.eigenvectors, d, e);
  tql2(d, e, result.eigenvectors);

  // Sort ascending, permuting eigenvector columns accordingly.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });
  result.eigenvalues.resize(n);
  RealMatrix sorted(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted(i, j) = result.eigenvectors(i, order[j]);
    }
  }
  result.eigenvectors = std::move(sorted);

  if (count != nullptr) {
    // Dense two-phase eigensolve: ~(4/3)n^3 for the reduction plus ~6n^3
    // for QL rotations with eigenvectors.
    const auto cubic = static_cast<Flops>(n) * n * n;
    count->add(cubic * 22 / 3, 3 * n * n * sizeof(double));
  }
  return result;
}

HermitianEigenResult heev(const ComplexMatrix& hermitian, OpCount* count) {
  NDFT_REQUIRE(hermitian.rows() == hermitian.cols(),
               "heev: matrix must be square");
  const std::size_t n = hermitian.rows();
  // Real embedding M = [[A, -B], [B, A]] for H = A + iB.
  RealMatrix embedded(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Complex h = hermitian(i, j);
      embedded(i, j) = h.real();
      embedded(i + n, j + n) = h.real();
      embedded(i, j + n) = -h.imag();
      embedded(i + n, j) = h.imag();
    }
  }
  EigenResult real_result = syev(embedded, count);

  // Each eigenvalue of H appears twice; fold pairs and rebuild complex
  // eigenvectors v = x + i y, re-orthonormalising inside degenerate groups.
  HermitianEigenResult result;
  result.eigenvalues.reserve(n);
  result.eigenvectors = ComplexMatrix(n, n);
  std::vector<std::vector<Complex>> kept;
  kept.reserve(n);
  for (std::size_t j = 0; j < 2 * n && kept.size() < n; ++j) {
    std::vector<Complex> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = Complex{real_result.eigenvectors(i, j),
                     real_result.eigenvectors(i + n, j)};
    }
    // Project out already-kept vectors (modified Gram-Schmidt).
    for (const auto& u : kept) {
      Complex overlap{};
      for (std::size_t i = 0; i < n; ++i) overlap += std::conj(u[i]) * v[i];
      for (std::size_t i = 0; i < n; ++i) v[i] -= overlap * u[i];
    }
    double norm = 0.0;
    for (const Complex& value : v) norm += std::norm(value);
    norm = std::sqrt(norm);
    if (norm < 1e-8) {
      continue;  // duplicate of an already-kept pair partner
    }
    for (Complex& value : v) value /= norm;
    result.eigenvalues.push_back(real_result.eigenvalues[j]);
    kept.push_back(std::move(v));
  }
  NDFT_REQUIRE(kept.size() == n, "heev: failed to fold embedded eigenpairs");
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = kept[j][i];
    }
  }
  return result;
}

double eigen_residual(const RealMatrix& symmetric,
                      const EigenResult& result) {
  const std::size_t n = symmetric.rows();
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double value = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        value += symmetric(i, k) * result.eigenvectors(k, j);
      }
      value -= result.eigenvalues[j] * result.eigenvectors(i, j);
      sum += value * value;
    }
  }
  return std::sqrt(sum);
}

}  // namespace ndft::dft
