#pragma once
// The NDFT shared-memory programming interface (paper Table II) over the
// SPM-based shared memory and hierarchical communication scheme of
// Section IV-C.
//
// Blocks ("sharedBL") live in their owner stack's SPM when hot, spilling
// to the owner's stack DRAM otherwise. Intra-stack reads hit the SPM.
// Inter-stack reads go through one designated communication arbiter per
// stack: the requester's arbiter first checks the stack's SPM staging
// area (this is the "filter" that maximises intra-stack communication);
// on a miss it exchanges messages with the owner stack's arbiter over the
// mesh and stages the block locally. The flat mode (hierarchical=false)
// bypasses arbiters and staging, which is the A3 ablation.

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ndp/ndp_system.hpp"
#include "sim/sim_object.hpp"

namespace ndft::runtime {

/// Completion callback for the asynchronous API calls.
using ShmCallback = std::function<void(TimePs)>;

/// The paper's sharedBL handle.
struct SharedBlock {
  unsigned id = 0;
  unsigned owner_stack = 0;
  Bytes size = 0;
  bool in_spm = false;  ///< resident in the owner's SPM (else stack DRAM)
};

/// Tuning knobs of the shared-memory runtime.
struct SharedMemoryConfig {
  bool hierarchical = true;  ///< arbiter + staging (Section IV-C) vs flat
  TimePs arbiter_service_ps = 200 * kPsPerNs;  ///< software cost/request
  double stack_dram_gbps = 180.0;  ///< sustained bulk rate of stack DRAM
  TimePs stack_dram_latency_ps = 60 * kPsPerNs;
  Bytes request_bytes = 32;  ///< control message size on the mesh
};

/// Implements Table II: Alloc_Shared / Read / Write / Read_Remote /
/// Write_Remote / Broadcast, with simulated timing.
class SharedMemoryManager : public sim::SimObject {
 public:
  SharedMemoryManager(std::string name, sim::EventQueue& queue,
                      ndp::NdpSystem& ndp, const SharedMemoryConfig& config);

  /// NDFT_Alloc_Shared: allocates a block owned by `owner_unit`'s stack.
  /// Falls back to stack DRAM when the SPM is full.
  SharedBlock alloc_shared(Bytes size, unsigned owner_unit);

  /// Releases a block (frees its SPM region if it had one).
  void free_shared(const SharedBlock& block);

  /// NDFT_Read: intra-stack read of `length` bytes by a unit in the
  /// owner's stack.
  void read(const SharedBlock& block, Bytes length, ShmCallback done);

  /// NDFT_Write: intra-stack write.
  void write(const SharedBlock& block, Bytes length, ShmCallback done);

  /// NDFT_Read_Remote: a unit in `requester_stack` reads a block owned by
  /// another stack. Hierarchical mode stages the block in the local SPM so
  /// subsequent readers in the same stack stay local.
  void read_remote(const SharedBlock& block, Bytes length,
                   unsigned requester_stack, ShmCallback done);

  /// NDFT_Write_Remote: pushes `length` bytes into a remote block.
  void write_remote(const SharedBlock& block, Bytes length,
                    unsigned requester_stack, ShmCallback done);

  /// NDFT_Broadcast: stages the block in every stack's SPM.
  void broadcast(const SharedBlock& block, ShmCallback done);

  /// Bytes served within a stack (SPM hits + local DRAM).
  Bytes intra_stack_bytes() const noexcept { return intra_bytes_; }
  /// Bytes that crossed the mesh.
  Bytes inter_stack_bytes() const noexcept { return inter_bytes_; }
  /// Remote reads answered from the local staging area (the filter).
  std::uint64_t staging_hits() const noexcept { return staging_hits_; }
  std::uint64_t staging_misses() const noexcept { return staging_misses_; }

  const SharedMemoryConfig& config() const noexcept { return config_; }

 private:
  struct BlockState {
    SharedBlock block;
    std::optional<Addr> spm_offset;  ///< valid when resident in owner SPM
  };

  /// Earliest time the stack's arbiter can take another request.
  TimePs arbiter_admit(unsigned stack, TimePs earliest);
  /// Bulk read/write time against a stack's DRAM.
  TimePs stack_dram_time(Bytes length) const;
  /// Serves `length` bytes at the owner (SPM or DRAM), calling `done`.
  void serve_at_owner(const BlockState& state, Bytes length, bool is_write,
                      TimePs start, ShmCallback done);

  ndp::NdpSystem* ndp_;
  SharedMemoryConfig config_;
  std::unordered_map<unsigned, BlockState> blocks_;
  std::vector<TimePs> arbiter_free_;  ///< per-stack arbiter availability
  /// Staging filter: per stack, the set of block ids currently staged.
  std::vector<std::unordered_set<unsigned>> staged_;
  std::vector<Bytes> staged_bytes_;  ///< staging occupancy per stack
  /// In-flight remote fetches: (stack, block) -> callbacks waiting for the
  /// same data. The arbiter merges concurrent readers of one block into a
  /// single mesh transfer — the "filter" of Section IV-C.
  std::unordered_map<std::uint64_t, std::vector<ShmCallback>> pending_;
  unsigned next_id_ = 1;
  Bytes intra_bytes_ = 0;
  Bytes inter_bytes_ = 0;
  std::uint64_t staging_hits_ = 0;
  std::uint64_t staging_misses_ = 0;
};

}  // namespace ndft::runtime
