#include "core/system_config.hpp"

namespace ndft::core {
namespace {

double compute_capability(const ndp::NdpSystemConfig& config) {
  return static_cast<double>(config.total_cores()) *
         (static_cast<double>(config.stack.core.freq_mhz) / 1000.0) *
         config.stack.core.flops_per_cycle;
}

double dram_capability(const ndp::NdpSystemConfig& config) {
  return config.stack.dram.peak_gbps() * config.stacks();
}

double link_capability(const ndp::NdpSystemConfig& config) {
  return config.cpu_link_gbps * config.cpu_links;
}

double ratio(double machine, double reference) {
  return reference > 0.0 ? machine / reference : 1.0;
}

}  // namespace

runtime::DeviceProfile ndp_profile_from(const ndp::NdpSystemConfig& machine,
                                        const runtime::DeviceProfile& base) {
  const ndp::NdpSystemConfig reference = ndp::NdpSystemConfig::table3();
  runtime::DeviceProfile profile = base;
  profile.peak_gflops =
      base.peak_gflops *
      ratio(compute_capability(machine), compute_capability(reference));
  profile.dram_gbps =
      base.dram_gbps *
      ratio(dram_capability(machine), dram_capability(reference));
  profile.link_gbps =
      base.link_gbps *
      ratio(link_capability(machine), link_capability(reference));
  return profile;
}

}  // namespace ndft::core
