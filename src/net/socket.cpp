#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ndft::net {

namespace {

std::string errno_text(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw NdftError("invalid IPv4 address: " + address);
  }
  return addr;
}

// Waits for readability; returns true when ready, false on timeout.
// timeout_ms == 0 waits forever (in bounded slices so EINTR is harmless).
bool wait_readable(int fd, double timeout_ms) {
  const bool forever = timeout_ms <= 0.0;
  double remaining = timeout_ms;
  while (true) {
    int slice = 100;  // ms; bounds how long a stale wait can linger
    if (!forever) {
      if (remaining <= 0.0) return false;
      if (remaining < slice) slice = static_cast<int>(remaining) + 1;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, slice);
    if (rc > 0) return true;
    if (rc < 0 && errno != EINTR) {
      throw NdftError(errno_text("poll"));
    }
    if (!forever) remaining -= slice;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect(const std::string& address, std::uint16_t port) {
  const sockaddr_in addr = make_addr(address, port);
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw NdftError(errno_text("socket"));
  }
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    throw NdftError("connect to " + address + ":" + std::to_string(port) +
                    " failed: " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const char* data, std::size_t size) {
  NDFT_REQUIRE(valid(), "send on closed socket");
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NdftError(errno_text("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

long Socket::recv_some(char* data, std::size_t size, double timeout_ms) {
  NDFT_REQUIRE(valid(), "recv on closed socket");
  if (!wait_readable(fd_, timeout_ms)) return -1;
  while (true) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return 0;  // abrupt close == orderly for us
    throw NdftError(errno_text("recv"));
  }
}

std::string Socket::peer_address() const {
  if (!valid()) return "?";
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return "?";
  }
  char buf[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr) {
    return "?";
  }
  return buf;
}

Listener::Listener(const std::string& address, std::uint16_t port,
                   int backlog) {
  const sockaddr_in addr = make_addr(address, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw NdftError(errno_text("socket"));
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string text = "bind " + address + ":" + std::to_string(port) +
                             " failed: " + std::strerror(errno);
    close();
    throw NdftError(text);
  }
  if (::listen(fd_, backlog) != 0) {
    const std::string text = errno_text("listen");
    close();
    throw NdftError(text);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string text = errno_text("getsockname");
    close();
    throw NdftError(text);
  }
  port_ = ntohs(bound.sin_port);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Socket Listener::accept(double timeout_ms) {
  NDFT_REQUIRE(valid(), "accept on closed listener");
  if (!wait_readable(fd_, timeout_ms)) return Socket();
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EINTR) continue;
    // The listener may have been closed by shutdown() between poll and
    // accept, or the pending connection was already reset: not fatal.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return Socket();
    }
    throw NdftError(errno_text("accept"));
  }
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ndft::net
