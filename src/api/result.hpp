#pragma once
// Structured job results: status, error taxonomy, timings, the physics /
// simulation payload, and engine metadata — everything a bench harness or
// a network front end needs, with lossless JSON serialization both ways.
//
// The JSON schema is versioned ("ndft.job_result.v1"); `to_json()` and
// `from_json()` round-trip exactly (`dump()` of the reconstruction equals
// `dump()` of the original), which tests/api_test.cpp pins down.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/kernel_trace.hpp"
#include "common/types.hpp"
#include "core/report.hpp"
#include "runtime/scheduler.hpp"

namespace ndft::api {

/// Lifecycle / outcome of a job.
enum class JobStatus {
  kQueued,            ///< accepted, waiting in the engine queue
  kRunning,           ///< executing
  kOk,                ///< finished successfully
  kInvalid,           ///< rejected by request validation
  kFailed,            ///< physics or internal error during execution
  kCancelled,         ///< cancelled while queued or mid-run
  kDeadlineExceeded,  ///< deadline_ms expired before the job finished
  kCount_,            ///< sentinel for the name table; keep last
};
const char* to_string(JobStatus status) noexcept;
/// Inverse of to_string (every enumerator round-trips); throws NdftError
/// on unknown names.
JobStatus job_status_from_string(const std::string& name);

/// Error taxonomy for non-Ok results. Transient kinds (is_transient)
/// are retried by the Engine with capped deterministic backoff;
/// everything else is permanent for the request.
enum class ErrorKind {
  kNone,               ///< no error (status Ok, Queued or Running)
  kInvalidRequest,     ///< request failed validation
  kPhysics,            ///< solver-level failure (NdftError)
  kInternal,           ///< unexpected exception
  kCancelled,          ///< job cancelled while queued or mid-run
  kDeadlineExceeded,   ///< deadline_ms expired (queued or mid-run)
  kTransientResource,  ///< allocation pressure; retry may succeed
  kTransientDevice,    ///< simulated NDP/memory fault; retry may succeed
  kCount_,             ///< sentinel for the name table; keep last
};
const char* to_string(ErrorKind kind) noexcept;
/// Inverse of to_string (every enumerator round-trips); throws NdftError
/// on unknown names.
ErrorKind error_kind_from_string(const std::string& name);

/// True for the error kinds the Engine's retry loop treats as transient.
bool is_transient(ErrorKind kind) noexcept;

/// Wall-clock accounting of one job (milliseconds).
struct JobTimings {
  double queue_ms = 0.0;    ///< submit -> execution start
  double run_ms = 0.0;      ///< execution start -> finish (all attempts)
  double total_ms = 0.0;    ///< submit -> finish
  double linalg_ms = 0.0;   ///< run time spent in dense linalg (GEMM/SYEVD)
  double backoff_ms = 0.0;  ///< slept between retry attempts (additive)
  /// Eigensolver stage split (additive fields in ndft.job_result.v1;
  /// `linalg_ms` above stays for older readers). Disjoint sub-spans of
  /// the linalg time: the reduction to tridiagonal form, the tridiagonal
  /// eigensolve, and the eigenvector back-transformations; they sum to
  /// at most linalg_ms (GEMM time outside an eigensolve is in no bucket).
  double reduce_ms = 0.0;
  double tridiag_ms = 0.0;
  double backtransform_ms = 0.0;
};

/// Engine metadata stamped onto every result.
struct EngineInfo {
  std::uint64_t job_id = 0;      ///< engine-unique, monotonically assigned
  std::string kind;              ///< job kind name ("scf", "simulate", ...)
  std::size_t pool_threads = 0;  ///< shared kernel thread-pool width
  std::size_t dispatch_threads = 0;  ///< async queue drain width
  /// Order in which the engine started executing this job relative to
  /// the other queued jobs (1-based; 0 for synchronous run()). Makes the
  /// cost-aware queue ordering observable.
  std::uint64_t exec_seq = 0;
  /// Execution attempts this result took (1 = no retries; additive in
  /// ndft.job_result.v1).
  std::uint32_t attempts = 1;
};

// ---------------------------------------------------------------- payloads

/// SCF-LDA ground-state summary (ScfJob).
struct ScfPayload {
  std::size_t atoms = 0;
  std::size_t basis_size = 0;
  std::size_t grid_points = 0;
  bool converged = false;
  std::size_t iterations = 0;
  double total_energy_ha = 0.0;
  double gap_ev = 0.0;
  double final_residual = 0.0;
  double electron_count = 0.0;
  /// Per-iteration (residual, total energy) history for convergence plots.
  std::vector<double> residual_history;
  std::vector<double> energy_history;
};

/// Band energies at one k-point (BandStructureJob).
struct BandsAtKPayload {
  std::string label;            ///< nonempty at high-symmetry points
  double weight = 1.0;          ///< integration weight (additive in v1)
  /// Cartesian reciprocal coordinates in Bohr^-1 (additive in v1; zero
  /// in pre-sharding documents). Lets a gather stage find the zone
  /// centre in merged partial payloads without re-deriving the grid.
  double k[3] = {0.0, 0.0, 0.0};
  std::vector<double> energies_ha;
};

/// EPM band structure along the FCC path or a Monkhorst-Pack grid
/// (BandStructureJob). The crystal/sampling/band-energy members are
/// additive in ndft.job_result.v1: older documents omit them and
/// deserialize to the defaults.
struct BandStructurePayload {
  std::size_t atoms = 0;        ///< atoms in the solved crystal (2 = primitive)
  std::string sampling;         ///< "path" or "monkhorst_pack"
  std::size_t basis_size = 0;
  std::vector<BandsAtKPayload> path;
  double vbm_ha = 0.0;
  double cbm_ha = 0.0;
  std::string vbm_label;
  std::string cbm_label;
  double indirect_gap_ev = 0.0;
  double direct_gap_gamma_ev = 0.0;
  double band_energy_ha = 0.0;  ///< weight-averaged occupied band energy
  double weight_sum = 0.0;      ///< total integration weight of the k-set
};

/// One optical line (LrtddftJob with oscillator_strengths).
struct OscillatorLinePayload {
  double energy_ev = 0.0;
  double strength = 0.0;
};

/// Per-kernel-class operation tally (LrtddftJob).
struct KernelCountPayload {
  KernelClass cls = KernelClass::kOther;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
};

/// LR-TDDFT excitation summary (LrtddftJob).
struct LrtddftPayload {
  std::size_t atoms = 0;
  std::size_t basis_size = 0;
  std::size_t grid_dims[3] = {0, 0, 0};
  double ground_gap_ev = 0.0;
  std::size_t valence_bands = 0;
  std::size_t projector_count = 0;
  double nonlocal_expectation_ha = 0.0;  ///< <psi0| V_nl |psi0>
  std::size_t pair_count = 0;
  std::vector<double> excitations_ha;
  std::vector<KernelCountPayload> counts;
  std::vector<OscillatorLinePayload> lines;  ///< empty unless requested
};

/// Timing-simulation summary: the RunReport in serializable form
/// (SimulateJob). Kernel entries reuse core::KernelTime so the payload
/// and the RunReport present the same rows.
struct SimulatePayload {
  core::ExecMode mode = core::ExecMode::kNdft;
  std::size_t atoms = 0;
  std::size_t pairs = 0;
  std::size_t grid_points = 0;
  std::size_t basis_size = 0;
  std::vector<core::KernelTime> kernels;
  TimePs total_ps = 0;
  TimePs sched_overhead_ps = 0;
  double memory_energy_mj = 0.0;
  Bytes mesh_bytes = 0;
  Bytes sharing_bytes = 0;
  Bytes pseudo_total = 0;
  Bytes pseudo_per_process = 0;
  Bytes pseudo_capacity = 0;
  bool pseudo_oom = false;
  /// Bounded component-statistics roll-up from RunReport::stats
  /// ("mesh.hops", "dram.channel_utilization",
  /// "serdes.backpressure_stall_ps", ...). Additive in
  /// ndft.job_result.v1: older documents omit it and deserialize empty.
  std::map<std::string, double> stats;
};

/// One kernel's placement decision plus the SCA view behind it (PlanJob).
struct PlacementPayload {
  std::string kernel;
  KernelClass cls = KernelClass::kOther;
  DeviceKind device = DeviceKind::kCpu;
  bool crossing = false;
  TimePs est_time_ps = 0;
  TimePs transfer_in_ps = 0;
  TimePs switch_in_ps = 0;
  double arithmetic_intensity = 0.0;
  TimePs est_cpu_ps = 0;
  TimePs est_ndp_ps = 0;
};

/// Cost-aware schedule summary (PlanJob).
struct PlanPayload {
  std::size_t atoms = 0;
  runtime::Granularity granularity = runtime::Granularity::kFunction;
  std::vector<PlacementPayload> placements;
  TimePs est_total_ps = 0;
  TimePs est_overhead_ps = 0;
  unsigned crossings = 0;
  /// True when the CPU-side beliefs behind this plan came from the
  /// engine's persisted device-profile store (a previous calibrated
  /// co-design run on this host) rather than the static Table-III
  /// defaults. Additive in ndft.job_result.v1.
  bool used_stored_profile = false;

  /// Fraction of the estimated total spent on scheduling overhead
  /// (mirrors runtime::ExecutionPlan::overhead_fraction()).
  double overhead_fraction() const noexcept {
    return est_total_ps == 0
               ? 0.0
               : static_cast<double>(est_overhead_ps) /
                     static_cast<double>(est_total_ps);
  }
};

/// Fitted CPU-side roofline constants (CoDesignJob with calibrate).
struct CalibrationPayload {
  bool calibrated = false;
  double peak_gflops = 0.0;
  double dram_gbps = 0.0;
  double blocked_efficiency = 0.0;
  /// Worst est/measured multiplicative mismatch across fitted kernels.
  double max_ratio = 0.0;
  std::size_t fitted_events = 0;
  double fitted_ms = 0.0;
};

/// Trace replay through the co-design loop (CoDesignJob): the schedule
/// the NDP machine would use for the measured workload, the calibration
/// behind its CPU-side estimates, and optionally the simulated execution
/// of that schedule.
struct CoDesignPayload {
  std::size_t trace_events = 0;       ///< events replayed
  std::size_t trace_atoms = 0;
  Flops trace_flops = 0;
  Bytes trace_bytes = 0;
  double trace_host_ms = 0.0;         ///< measured wall time of the trace
  /// True when the recorder hit its event cap: the trace (and therefore
  /// this plan) covers only a prefix of the recorded run.
  bool trace_truncated = false;
  CalibrationPayload calibration;
  PlanPayload plan;                   ///< placements / crossings / estimates
  std::optional<SimulatePayload> simulate;  ///< engaged when requested
};

/// Scatter/gather accounting stamped by a ShardedEngine run (api/shard):
/// how the job was split and what the fan-out survived. Additive in
/// ndft.job_result.v1 — absent for plain Engine results.
struct ShardInfo {
  std::size_t backends = 0;        ///< backends the job was scattered over
  std::size_t shards = 0;          ///< sub-jobs created for this job
  std::size_t rerouted = 0;        ///< shard executions retried elsewhere
  std::size_t failed_backends = 0; ///< backends lost during the run
};

// ----------------------------------------------------------------- result

/// The structured result of one job. Exactly one payload member is
/// engaged on success; all are empty on rejection/failure.
struct JobResult {
  JobStatus status = JobStatus::kQueued;
  ErrorKind error = ErrorKind::kNone;
  std::string error_message;
  std::vector<std::string> error_details;  ///< per-field validation errors
  JobTimings timings;
  EngineInfo engine;

  std::optional<ScfPayload> scf;
  std::optional<BandStructurePayload> band_structure;
  std::optional<LrtddftPayload> lrtddft;
  std::optional<SimulatePayload> simulate;
  std::optional<PlanPayload> plan;
  std::optional<CoDesignPayload> codesign;

  /// Kernel trace of the run, engaged when the request set record_trace
  /// (serialized additively under "trace"; older documents omit it).
  std::optional<KernelTrace> trace;

  /// Non-empty when the job succeeded in degraded form: stable tags like
  /// "syevd_partial:full_fallback" or "trace:recorder_failed", in program
  /// order (serialized additively under "degraded").
  std::vector<std::string> degraded;

  /// Scatter/gather counters, engaged when a ShardedEngine executed the
  /// job (serialized additively under "shard"; plain Engine results and
  /// older documents omit it).
  std::optional<ShardInfo> shard;

  bool ok() const noexcept { return status == JobStatus::kOk; }

  /// Serializes under the "ndft.job_result.v1" schema.
  Json to_json() const;
  /// Reconstructs a result from its serialized form; throws NdftError on
  /// schema mismatch or malformed members.
  static JobResult from_json(const Json& json);
};

}  // namespace ndft::api
