#include "ndp/ndp_system.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"
#include "mem/energy.hpp"

namespace ndft::ndp {

NdpSystemConfig NdpSystemConfig::table3() {
  return NdpSystemConfig{};  // defaults encode Table III
}

NdpSystem::NdpSystem(const std::string& name, sim::EventQueue& queue,
                     const NdpSystemConfig& config)
    : config_(config), queue_(&queue) {
  mesh_ = std::make_unique<noc::Mesh>(name + ".mesh", queue, config.mesh);
  const unsigned stacks = config.stacks();
  stacks_.reserve(stacks);
  for (unsigned i = 0; i < stacks; ++i) {
    stacks_.push_back(std::make_unique<NdpStack>(
        name + ".stack" + std::to_string(i), queue, config.stack));
  }
  cpu_port_ = std::make_unique<CpuPort>(*this);

  // Outbound SerDes links: store-forward (a request is fully serialized
  // before the PHY latency), one bounded connection per physical link.
  sim::LinkConfig link;
  link.latency_ps = config.serdes_latency_ps;
  link.gbps = config.cpu_link_gbps;
  link.capacity = std::max<std::size_t>(config.cpu_link_queue, 1);
  link.delivery = sim::Delivery::kStoreForward;
  const unsigned links = std::max(config.cpu_links, 1u);
  for (unsigned i = 0; i < links; ++i) {
    cpu_links_.push_back(std::make_unique<sim::Connection<CpuRequestMsg>>(
        queue, link, &serdes_stats_));
    cpu_links_.back()->on_receive([this, i] {
      auto& in = *cpu_links_[i];
      while (!in.empty()) {
        handle_cpu_request(in.pop());
      }
    });
    cpu_link_out_.push_back(
        std::make_unique<sim::OutputPort<CpuRequestMsg>>(*cpu_links_.back()));
    cpu_link_senders_.push_back(
        std::make_unique<sim::CreditedSender<CpuRequestMsg>>(
            queue, *cpu_link_out_.back(), &serdes_stats_));
  }

  // Return path for read data leaving the mesh: the outbound trip already
  // charged the wire, so the exit pays PHY latency only (gbps 0 = no
  // serialization, no contention) — the historical asymmetry, kept
  // bitwise.
  sim::LinkConfig response;
  response.latency_ps = config.serdes_latency_ps;
  response.gbps = 0.0;
  response.capacity = 1024;
  response.delivery = sim::Delivery::kStoreForward;
  cpu_response_ = std::make_unique<sim::Connection<CpuResponseMsg>>(
      queue, response, &serdes_stats_);
  cpu_response_->on_receive([this] {
    while (!cpu_response_->empty()) {
      CpuResponseMsg msg = cpu_response_->pop();
      if (msg.on_complete) msg.on_complete(queue_->now());
    }
  });
  cpu_response_out_ =
      std::make_unique<sim::OutputPort<CpuResponseMsg>>(*cpu_response_);
  cpu_response_sender_ = std::make_unique<sim::CreditedSender<CpuResponseMsg>>(
      queue, *cpu_response_out_, &serdes_stats_);
}

unsigned NdpSystem::stack_of_addr(Addr addr) const noexcept {
  // Line-interleaved across stacks: consecutive 64 B lines round-robin, so
  // CPU streaming spreads over all stacks and channels.
  return static_cast<unsigned>((addr / 64) % stacks_.size());
}

Addr NdpSystem::local_addr(Addr addr) const noexcept {
  const Addr line = addr / 64;
  const Addr offset = addr % 64;
  return (line / stacks_.size()) * 64 + offset;
}

unsigned NdpSystem::entry_node_for(unsigned stack) const noexcept {
  // The CPU package connects at the four corners of the 4x4 mesh; traffic
  // enters at the corner nearest the destination stack.
  const unsigned w = config_.mesh.width;
  const unsigned h = config_.mesh.height;
  const unsigned corners[4] = {0, w - 1, (h - 1) * w, h * w - 1};
  unsigned best = corners[0];
  unsigned best_hops = mesh_->hops(corners[0], stack);
  for (unsigned i = 1; i < 4; ++i) {
    const unsigned hop = mesh_->hops(corners[i], stack);
    if (hop < best_hops) {
      best = corners[i];
      best_hops = hop;
    }
  }
  return best;
}

void NdpSystem::CpuPort::access(mem::MemRequest req) {
  NdpSystem& sys = *owner_;
  CpuRequestMsg msg;
  msg.stack = sys.stack_of_addr(req.addr);
  msg.entry = sys.entry_node_for(msg.stack);
  msg.local = sys.local_addr(req.addr);
  msg.data_bytes = req.size;
  msg.is_write = req.is_write;
  msg.on_complete = std::move(req.on_complete);

  // Pick the least-loaded SerDes link by wire availability (ties go to
  // the lowest-numbered link, as before); the connection then pays
  // serialization + PHY latency.
  std::size_t link = 0;
  for (std::size_t i = 1; i < sys.cpu_links_.size(); ++i) {
    if (sys.cpu_links_[i]->wire_free_at() <
        sys.cpu_links_[link]->wire_free_at()) {
      link = i;
    }
  }
  const Bytes outbound =
      sys.config_.request_bytes + (msg.is_write ? msg.data_bytes : 0);
  sys.cpu_link_senders_[link]->push(std::move(msg), outbound);
}

void NdpSystem::handle_cpu_request(CpuRequestMsg msg) {
  // Hop across the mesh to the owning stack.
  mesh_->send(
      msg.entry, msg.stack, config_.request_bytes,
      [this, msg = std::move(msg)](TimePs) mutable {
        mem::MemRequest dram_req;
        dram_req.addr = msg.local;
        dram_req.size = msg.data_bytes;
        dram_req.is_write = msg.is_write;
        if (msg.is_write) {
          // Posted write: complete once the stack DRAM accepts it.
          dram_req.on_complete = nullptr;
          stacks_[msg.stack]->dram().access(std::move(dram_req));
          if (msg.on_complete) {
            msg.on_complete(queue_->now());
          }
          return;
        }
        const unsigned stack = msg.stack;
        dram_req.on_complete = [this, stack, entry = msg.entry,
                                data_bytes = msg.data_bytes,
                                callback = std::move(msg.on_complete)](
                                   TimePs) mutable {
          // Data response crosses the mesh back and exits over SerDes.
          mesh_->send(stack, entry,
                      data_bytes + config_.response_overhead,
                      [this, callback = std::move(callback)](TimePs) mutable {
                        cpu_response_sender_->push(
                            CpuResponseMsg{std::move(callback)}, 0);
                      });
        };
        stacks_[stack]->dram().access(std::move(dram_req));
      });
}

void NdpSystem::run(const std::vector<const cpu::Trace*>& traces,
                    std::function<void()> on_done) {
  NDFT_REQUIRE(!traces.empty(), "no traces to run");
  NDFT_REQUIRE(traces.size() <= config_.total_cores(),
               "more traces than NDP cores");
  NDFT_REQUIRE(running_ == 0, "NDP system is already running a kernel");
  on_done_ = std::move(on_done);
  running_ = static_cast<unsigned>(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    NDFT_ASSERT(traces[i] != nullptr);
    // Round-robin across stacks: trace i runs in stack i % stacks, which
    // matches how the scheduler partitions data (stack-local slices).
    const unsigned stack = static_cast<unsigned>(i) % stack_count();
    const unsigned core_in_stack =
        static_cast<unsigned>(i) / stack_count() %
        stacks_[stack]->core_count();
    stacks_[stack]->core(core_in_stack).run_trace(traces[i], [this] {
      NDFT_ASSERT(running_ > 0);
      if (--running_ == 0 && on_done_) {
        auto done = std::move(on_done_);
        on_done_ = nullptr;
        done();
      }
    });
  }
}

void NdpSystem::flush_caches() {
  for (auto& stack : stacks_) {
    stack->flush_caches();
  }
}

void NdpSystem::invalidate_caches() {
  for (auto& stack : stacks_) {
    stack->invalidate_caches();
  }
}

double NdpSystem::dram_energy_nj() const {
  double total = 0.0;
  const mem::DramEnergy hbm = mem::DramEnergy::hbm2();
  for (const auto& stack : stacks_) {
    total += stack->dram().energy_nj(hbm);
  }
  return total;
}

double NdpSystem::dram_dynamic_energy_nj() const {
  double total = 0.0;
  const mem::DramEnergy hbm = mem::DramEnergy::hbm2();
  for (const auto& stack : stacks_) {
    total += stack->dram().dynamic_energy_nj(hbm);
  }
  return total;
}

double NdpSystem::dram_background_mw() const {
  const mem::DramEnergy hbm = mem::DramEnergy::hbm2();
  const TimePs trefi =
      config_.stack.dram.timing.tCK_ps * config_.stack.dram.timing.tREFI;
  return hbm.background_with_refresh_mw(trefi) *
         static_cast<double>(stacks_.size()) * config_.stack.dram.channels;
}

double NdpSystem::energy_nj() const {
  return dram_energy_nj() + mesh_->energy_nj();
}

void NdpSystem::collect_stats(const std::string& prefix,
                              sim::StatSet& out) const {
  out.merge_prefixed(prefix + ".mesh", mesh_->stats());
  out.merge_prefixed(prefix + ".serdes", serdes_stats_);
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    stacks_[i]->collect_stats(prefix + ".stack" + std::to_string(i), out);
  }
}

}  // namespace ndft::ndp
