// Unit and property tests for the dense linear algebra kernels: GEMM
// against naive reference, the symmetric eigensolver (SYEVD) and the
// Hermitian eigensolver.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "dft/linalg.hpp"

namespace ndft::dft {
namespace {

RealMatrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  Prng prng(seed);
  RealMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = prng.next_double(-1.0, 1.0);
    }
  }
  return m;
}

RealMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = prng.next_double(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

ComplexMatrix random_hermitian(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  ComplexMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = Complex{prng.next_double(-1.0, 1.0), 0.0};
    for (std::size_t j = 0; j < i; ++j) {
      const Complex v{prng.next_double(-1.0, 1.0),
                      prng.next_double(-1.0, 1.0)};
      m(i, j) = v;
      m(j, i) = std::conj(v);
    }
  }
  return m;
}

/// Naive reference product for validation.
RealMatrix naive_product(const RealMatrix& a, const RealMatrix& b) {
  RealMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a(i, k) * b(k, j);
      }
      c(i, j) = acc;
    }
  }
  return c;
}

double max_abs_diff(const RealMatrix& a, const RealMatrix& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

TEST(MatrixTest, BasicAccessAndTranspose) {
  RealMatrix m(2, 3);
  m(0, 0) = 1.0;
  m(1, 2) = 5.0;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  const RealMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 5.0);
  EXPECT_EQ(m.bytes(), 6 * sizeof(double));
}

TEST(GemmTest, MatchesNaiveReference) {
  const RealMatrix a = random_matrix(17, 23, 1);
  const RealMatrix b = random_matrix(23, 11, 2);
  RealMatrix c;
  gemm(a, b, c);
  EXPECT_LT(max_abs_diff(c, naive_product(a, b)), 1e-12);
}

TEST(GemmTest, AlphaBetaComposition) {
  const RealMatrix a = random_matrix(8, 8, 3);
  const RealMatrix b = random_matrix(8, 8, 4);
  RealMatrix c = random_matrix(8, 8, 5);
  const RealMatrix c0 = c;
  gemm(a, b, c, 2.0, 3.0);
  const RealMatrix ab = naive_product(a, b);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c(i, j), 2.0 * ab(i, j) + 3.0 * c0(i, j), 1e-12);
    }
  }
}

TEST(GemmTest, TransposeVariants) {
  const RealMatrix a = random_matrix(9, 13, 6);
  const RealMatrix b = random_matrix(9, 7, 7);
  RealMatrix c;
  gemm(a, b, c, 1.0, 0.0, /*transpose_a=*/true);
  EXPECT_LT(max_abs_diff(c, naive_product(a.transposed(), b)), 1e-12);

  const RealMatrix d = random_matrix(5, 13, 8);
  RealMatrix e;
  gemm(a, d, e, 1.0, 0.0, false, /*transpose_b=*/true);
  EXPECT_LT(max_abs_diff(e, naive_product(a, d.transposed())), 1e-12);
}

TEST(GemmTest, RejectsMismatchedShapes) {
  const RealMatrix a = random_matrix(4, 5, 9);
  const RealMatrix b = random_matrix(6, 4, 10);
  RealMatrix c;
  EXPECT_THROW(gemm(a, b, c), NdftError);
}

TEST(GemmTest, CountsFlopsAndBytes) {
  const RealMatrix a = random_matrix(10, 20, 11);
  const RealMatrix b = random_matrix(20, 30, 12);
  RealMatrix c;
  OpCount count;
  gemm(a, b, c, 1.0, 0.0, false, false, &count);
  EXPECT_EQ(count.flops, 2u * 10 * 30 * 20);
  EXPECT_GT(count.bytes, 0u);
}

TEST(GemmTest, BlockedMatchesNaiveAcrossFlagCombinations) {
  // Odd shapes exercise every micro-tile remainder; the larger problem
  // goes through the packed/blocked path, the smaller through the inline
  // fast path. Sweep transpose, alpha and beta combinations against the
  // reference loop.
  struct Shape {
    std::size_t m, n, k;
  };
  const Shape shapes[] = {{67, 45, 33}, {129, 100, 70}};
  std::uint64_t seed = 100;
  for (const Shape& s : shapes) {
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        for (const double alpha : {1.0, -0.75}) {
          for (const double beta : {0.0, 1.0, 0.3}) {
            const RealMatrix a = ta ? random_matrix(s.k, s.m, seed)
                                    : random_matrix(s.m, s.k, seed);
            const RealMatrix b = tb ? random_matrix(s.n, s.k, seed + 1)
                                    : random_matrix(s.k, s.n, seed + 1);
            RealMatrix c_blocked = random_matrix(s.m, s.n, seed + 2);
            RealMatrix c_naive = c_blocked;
            seed += 3;
            gemm(a, b, c_blocked, alpha, beta, ta, tb);
            gemm_naive(a, b, c_naive, alpha, beta, ta, tb);
            EXPECT_LT(max_abs_diff(c_blocked, c_naive), 1e-12)
                << "m=" << s.m << " ta=" << ta << " tb=" << tb
                << " alpha=" << alpha << " beta=" << beta;
          }
        }
      }
    }
  }
}

TEST(GemmComplexTest, BlockedMatchesNaiveAcrossFlagCombinations) {
  const auto random_complex = [](std::size_t rows, std::size_t cols,
                                 std::uint64_t seed) {
    Prng prng(seed);
    ComplexMatrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        m(i, j) = Complex{prng.next_double(-1, 1), prng.next_double(-1, 1)};
      }
    }
    return m;
  };
  const std::size_t m = 41;
  const std::size_t n = 29;
  const std::size_t k = 53;
  std::uint64_t seed = 500;
  for (const bool ca : {false, true}) {
    for (const bool tb : {false, true}) {
      for (const Complex beta : {Complex{}, Complex{0.4, -0.2}}) {
        const ComplexMatrix a =
            ca ? random_complex(k, m, seed) : random_complex(m, k, seed);
        const ComplexMatrix b =
            tb ? random_complex(n, k, seed + 1) : random_complex(k, n, seed + 1);
        ComplexMatrix c_blocked = random_complex(m, n, seed + 2);
        ComplexMatrix c_naive = c_blocked;
        seed += 3;
        const Complex alpha{0.8, 0.3};
        gemm(a, b, c_blocked, alpha, beta, ca, tb);
        gemm_naive(a, b, c_naive, alpha, beta, ca, tb);
        double worst = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            worst = std::max(worst, std::abs(c_blocked(i, j) - c_naive(i, j)));
          }
        }
        EXPECT_LT(worst, 1e-12) << "ca=" << ca << " tb=" << tb;
      }
    }
  }
}

TEST(GemmTest, DeterministicAcrossThreadCounts) {
  // Big enough for the blocked path to split row blocks across the pool;
  // the result must be bitwise identical to the single-threaded product.
  const std::size_t n = 300;
  const RealMatrix a = random_matrix(n, n, 31);
  const RealMatrix b = random_matrix(n, n, 32);
  RealMatrix c_serial;
  RealMatrix c_parallel;

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  pool.resize(1);
  gemm(a, b, c_serial);
  pool.resize(4);
  gemm(a, b, c_parallel);
  pool.resize(original_threads);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(c_serial(i, j), c_parallel(i, j))
          << "element (" << i << ", " << j << ")";
    }
  }
}

TEST(GemmTest, NaiveCountsMatchBlocked) {
  const RealMatrix a = random_matrix(12, 18, 41);
  const RealMatrix b = random_matrix(18, 9, 42);
  RealMatrix c1;
  RealMatrix c2;
  OpCount blocked;
  OpCount naive;
  gemm(a, b, c1, 1.0, 0.0, false, false, &blocked);
  gemm_naive(a, b, c2, 1.0, 0.0, false, false, &naive);
  EXPECT_EQ(blocked.flops, naive.flops);
  EXPECT_EQ(blocked.bytes, naive.bytes);
}

TEST(GemmComplexTest, MatchesRealEmbedding) {
  // (A + iB)(C + iD) = (AC - BD) + i(AD + BC).
  Prng prng(13);
  const std::size_t n = 12;
  ComplexMatrix a(n, n);
  ComplexMatrix b(n, n);
  RealMatrix ar(n, n), ai(n, n), br(n, n), bi(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ar(i, j) = prng.next_double(-1, 1);
      ai(i, j) = prng.next_double(-1, 1);
      br(i, j) = prng.next_double(-1, 1);
      bi(i, j) = prng.next_double(-1, 1);
      a(i, j) = Complex{ar(i, j), ai(i, j)};
      b(i, j) = Complex{br(i, j), bi(i, j)};
    }
  }
  ComplexMatrix c;
  gemm(a, b, c);
  const RealMatrix ac = naive_product(ar, br);
  const RealMatrix bd = naive_product(ai, bi);
  const RealMatrix ad = naive_product(ar, bi);
  const RealMatrix bc = naive_product(ai, br);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(c(i, j).real(), ac(i, j) - bd(i, j), 1e-12);
      EXPECT_NEAR(c(i, j).imag(), ad(i, j) + bc(i, j), 1e-12);
    }
  }
}

TEST(GemmComplexTest, ConjugateTransposeContractions) {
  // A^H * A must be Hermitian positive semidefinite.
  Prng prng(17);
  ComplexMatrix a(9, 5);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      a(i, j) = Complex{prng.next_double(-1, 1), prng.next_double(-1, 1)};
    }
  }
  ComplexMatrix gram;
  gemm(a, a, gram, Complex{1.0, 0.0}, Complex{}, /*conj_transpose_a=*/true);
  ASSERT_EQ(gram.rows(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GE(gram(i, i).real(), 0.0);
    EXPECT_NEAR(gram(i, i).imag(), 0.0, 1e-12);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(gram(i, j).real(), gram(j, i).real(), 1e-12);
      EXPECT_NEAR(gram(i, j).imag(), -gram(j, i).imag(), 1e-12);
    }
  }
}

TEST(SyevdTest, DiagonalMatrixIsItsOwnSolution) {
  RealMatrix m(4, 4);
  m(0, 0) = 3.0;
  m(1, 1) = -1.0;
  m(2, 2) = 7.0;
  m(3, 3) = 0.5;
  const EigenResult result = syevd(m);
  EXPECT_DOUBLE_EQ(result.eigenvalues[0], -1.0);
  EXPECT_DOUBLE_EQ(result.eigenvalues[1], 0.5);
  EXPECT_DOUBLE_EQ(result.eigenvalues[2], 3.0);
  EXPECT_DOUBLE_EQ(result.eigenvalues[3], 7.0);
}

TEST(SyevdTest, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  RealMatrix m(2, 2);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  const EigenResult result = syevd(m);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[1], 3.0, 1e-12);
}

TEST(SyevdTest, TraceIsPreserved) {
  const RealMatrix m = random_symmetric(70, 22);
  const EigenResult result = syevd(m);
  double trace = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < 70; ++i) {
    trace += m(i, i);
    sum += result.eigenvalues[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(SyevdTest, CountsCubicWork) {
  const RealMatrix m = random_symmetric(32, 23);
  OpCount count;
  syevd(m, &count);
  EXPECT_GT(count.flops, 32ull * 32 * 32);  // at least n^3
  // The analytic descriptor is shared with the reference solver, so the
  // cost model sees the same SYEVD regardless of the implementation.
  OpCount naive;
  syevd_naive(m, &naive);
  EXPECT_EQ(count.flops, naive.flops);
  EXPECT_EQ(count.bytes, naive.bytes);
}

TEST(SyevdTest, RejectsNonSquare) {
  const RealMatrix m = random_matrix(3, 4, 24);
  EXPECT_THROW(syevd(m), NdftError);
  EXPECT_THROW(syevd_naive(m), NdftError);
}

// Property sweep for the blocked solver: residual, orthonormality,
// ascending order and agreement with the serial reference across sizes
// chosen around the panel width (kEigBlock = 32): below the block, at the
// block, one off either side, non-multiples, and multi-panel sizes.
class SyevdPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SyevdPropertyTest, ResidualOrthogonalityOrderAndNaiveAgreement) {
  const std::size_t n = GetParam();
  const RealMatrix m = random_symmetric(n, 100 + n);
  const EigenResult result = syevd(m);
  ASSERT_EQ(result.eigenvalues.size(), n);

  // Eigenvalues ascending.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_LE(result.eigenvalues[i - 1], result.eigenvalues[i]);
  }
  // ||A v - lambda v|| small relative to n.
  EXPECT_LT(eigen_residual(m, result), 1e-8 * static_cast<double>(n));
  // Eigenvector columns orthonormal.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += result.eigenvectors(i, a) * result.eigenvectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
  // Spectrum matches the serial reference.
  const EigenResult reference = syevd_naive(m);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], reference.eigenvalues[i], 1e-9)
        << "eigenvalue " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyevdPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31, 32, 33,
                                           50, 64, 70, 97, 128, 130));

TEST(SyevdTest, DeterministicAcrossThreadCounts) {
  // The reduction's GEMM updates, the QL rotation sweeps and the WY
  // back-transformation all split work across the pool; eigenvalues AND
  // eigenvectors must stay bitwise identical for any thread count. Large
  // enough to engage every parallel path (multiple panels, rotation
  // sweeps above the serial grain).
  const std::size_t n = 200;
  const RealMatrix m = random_symmetric(n, 77);

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  std::vector<EigenResult> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    pool.resize(threads);
    results.push_back(syevd(m));
  }
  // Restore before the assertions below: an ASSERT returns out of the
  // test, and the process-wide pool must not stay at the failing width.
  pool.resize(original_threads);

  for (std::size_t t = 1; t < results.size(); ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(results[0].eigenvalues[i], results[t].eigenvalues[i])
          << "eigenvalue " << i << " at thread variant " << t;
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(results[0].eigenvectors(i, j),
                  results[t].eigenvectors(i, j))
            << "eigenvector element (" << i << ", " << j
            << ") at thread variant " << t;
      }
    }
  }
}

// Two-stage + divide-and-conquer sweep. These sizes all sit above the
// dispatch threshold, bracketing the band width / panel edges (multiples
// of 32 and their neighbours), so the band reduction's short tail panel,
// the chase and the D&C merge tree all get exercised. Matrices are
// scaled to O(1/sqrt(n)) spectra so the 1e-13 naive-agreement bound is
// absolute.
class SyevdTwoStagePropertyTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SyevdTwoStagePropertyTest, ResidualOrthogonalityAndNaiveAgreement) {
  const std::size_t n = GetParam();
  RealMatrix m = random_symmetric(n, 500 + n);
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) *= scale;
  }
  const EigenResult result = syevd(m);
  ASSERT_EQ(result.eigenvalues.size(), n);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_LE(result.eigenvalues[i - 1], result.eigenvalues[i]);
  }
  EXPECT_LT(eigen_residual(m, result), 1e-11 * static_cast<double>(n));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += result.eigenvectors(i, a) * result.eigenvectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-12);
    }
  }
  const EigenResult reference = syevd_naive(m);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], reference.eigenvalues[i], 1e-13)
        << "eigenvalue " << i << " of " << n;
  }
  // The one-stage path solves the same problem; the two paths must agree
  // to the same tolerance (they are gated against each other in bench).
  const EigenResult onestage = syevd_onestage(m);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], onestage.eigenvalues[i], 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SyevdTwoStagePropertyTest,
                         ::testing::Values(160, 161, 191, 192, 193, 224,
                                           256));

TEST(SyevdTwoStageTest, FullyDegenerateSpectrumDeflatesCompletely) {
  // All-equal eigenvalues: every z component of every D&C merge is
  // negligible, so the whole tree deflates. The solve must return the
  // exact multiple eigenvalue with an orthonormal basis.
  const std::size_t n = 200;
  RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 0.75;
  const EigenResult result = syevd(m);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], 0.75, 1e-14);
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += result.eigenvectors(i, a) * result.eigenvectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-12);
    }
  }
  EXPECT_LT(eigen_residual(m, result), 1e-11);
}

TEST(SyevdTwoStageTest, ClusteredSpectrumExercisesDeflation) {
  // A dense matrix with a handful of tightly clustered eigenvalue groups:
  // the close-pair (type 2) deflation path fires in every merge. Built as
  // Q D Q^T from a deterministic orthonormal Q (Gram-Schmidt of a random
  // matrix), so the exact spectrum is known.
  const std::size_t n = 192;
  std::vector<double> spectrum(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = static_cast<double>(i / 48);  // 4 clusters
    spectrum[i] = base + 1e-12 * static_cast<double>(i % 48);
  }
  RealMatrix q = random_matrix(n, n, 4242);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t prev = 0; prev < j; ++prev) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += q(i, prev) * q(i, j);
      for (std::size_t i = 0; i < n; ++i) q(i, j) -= dot * q(i, prev);
    }
    double norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm2 += q(i, j) * q(i, j);
    const double inv = 1.0 / std::sqrt(norm2);
    for (std::size_t i = 0; i < n; ++i) q(i, j) *= inv;
  }
  RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        acc += q(i, k) * spectrum[k] * q(j, k);
      }
      m(i, j) = acc;
      m(j, i) = acc;
    }
  }
  const EigenResult result = syevd(m);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], spectrum[i], 1e-10)
        << "clustered eigenvalue " << i;
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += result.eigenvectors(i, a) * result.eigenvectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-11);
    }
  }
  EXPECT_LT(eigen_residual(m, result), 1e-9);
}

TEST(SyevdTwoStageTest, DeterministicAcrossThreadCounts) {
  // Same contract as the one-stage determinism test, but sized to engage
  // the two-stage path: band-reduction GEMM panels, the serial chase, the
  // pool-parallel secular solves and the reversed rotation replay must
  // all be bitwise identical for any pool width.
  const std::size_t n = 224;
  const RealMatrix m = random_symmetric(n, 1234);

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  std::vector<EigenResult> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    pool.resize(threads);
    results.push_back(syevd(m));
  }
  pool.resize(original_threads);

  for (std::size_t t = 1; t < results.size(); ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(results[0].eigenvalues[i], results[t].eigenvalues[i])
          << "eigenvalue " << i << " at thread variant " << t;
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(results[0].eigenvectors(i, j),
                  results[t].eigenvectors(i, j))
            << "eigenvector element (" << i << ", " << j
            << ") at thread variant " << t;
      }
    }
  }
}

// Partial-spectrum sweep: the lowest-m path must agree with the full
// solver on eigenvalues (to ~n*eps*||A||) and eigenvectors (to sign),
// stay orthonormal, and keep a small residual. Sizes bracket the panel
// width (kEigBlock = 32) like the full sweep; m spans the bisection
// regime (2m <= n) and the delegating regime (2m > n).
class SyevdPartialTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SyevdPartialTest, AgreesWithFullSolverOnLowestPairs) {
  const auto [n, m] = GetParam();
  const RealMatrix matrix = random_symmetric(n, 300 + n + m);
  const EigenResult full = syevd(matrix);
  const EigenResult partial = syevd_partial(matrix, m);
  ASSERT_EQ(partial.eigenvalues.size(), m);
  ASSERT_EQ(partial.eigenvectors.rows(), n);
  ASSERT_EQ(partial.eigenvectors.cols(), m);

  for (std::size_t k = 0; k < m; ++k) {
    EXPECT_NEAR(partial.eigenvalues[k], full.eigenvalues[k], 1e-10)
        << "eigenvalue " << k << " of n=" << n << " m=" << m;
  }
  // Vectors agree up to sign: |<v_partial, v_full>| ~ 1 (the random
  // matrices have simple spectra, so no multiplet gauge freedom).
  for (std::size_t k = 0; k < m; ++k) {
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot += partial.eigenvectors(i, k) * full.eigenvectors(i, k);
    }
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-8)
        << "eigenvector " << k << " of n=" << n << " m=" << m;
  }
  // Orthonormal columns.
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a; b < m; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += partial.eigenvectors(i, a) * partial.eigenvectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9)
          << "pair (" << a << ", " << b << ") of n=" << n << " m=" << m;
    }
  }
  // ||A v - lambda v|| per pair.
  for (std::size_t k = 0; k < m; ++k) {
    double residual2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        acc += matrix(i, j) * partial.eigenvectors(j, k);
      }
      acc -= partial.eigenvalues[k] * partial.eigenvectors(i, k);
      residual2 += acc * acc;
    }
    EXPECT_LT(std::sqrt(residual2), 1e-8 * static_cast<double>(n))
        << "residual of pair " << k << " at n=" << n << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SyevdPartialTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                      std::make_tuple(8, 3), std::make_tuple(31, 4),
                      std::make_tuple(32, 8), std::make_tuple(33, 16),
                      std::make_tuple(50, 50), std::make_tuple(64, 8),
                      std::make_tuple(70, 40), std::make_tuple(97, 12),
                      std::make_tuple(128, 16), std::make_tuple(130, 64)));

TEST(SyevdPartialTest, DegenerateClusterSpansTheSameSubspace) {
  // A matrix with an exactly threefold-degenerate lowest eigenvalue (the
  // Gamma_25' situation in the EPM matrices): the partial solver's
  // cluster vectors must be orthonormal and satisfy the residual even
  // though individual vectors are gauge-free.
  const std::size_t n = 40;
  RealMatrix diag(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    diag(i, i) = (i < 3) ? -5.0 : static_cast<double>(i);
  }
  // Conjugate by a Householder reflector so the matrix is dense.
  std::vector<double> w(n);
  Prng prng(77);
  double norm2 = 0.0;
  for (double& value : w) {
    value = prng.next_double(-1.0, 1.0);
    norm2 += value * value;
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (double& value : w) value *= inv;
  RealMatrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      q(i, j) = (i == j ? 1.0 : 0.0) - 2.0 * w[i] * w[j];
    }
  }
  RealMatrix tmp;
  RealMatrix matrix;
  gemm(q, diag, tmp);
  gemm(tmp, q, matrix, 1.0, 0.0, false, /*transpose_b=*/true);

  const EigenResult partial = syevd_partial(matrix, 5);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(partial.eigenvalues[k], -5.0, 1e-9);
  }
  EXPECT_NEAR(partial.eigenvalues[3], 3.0, 1e-9);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a; b < 5; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += partial.eigenvectors(i, a) * partial.eigenvectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
  for (std::size_t k = 0; k < 5; ++k) {
    double residual2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        acc += matrix(i, j) * partial.eigenvectors(j, k);
      }
      acc -= partial.eigenvalues[k] * partial.eigenvectors(i, k);
      residual2 += acc * acc;
    }
    EXPECT_LT(std::sqrt(residual2), 1e-8);
  }
}

TEST(SyevdPartialTest, DeterministicAcrossThreadCounts) {
  // Reduction GEMMs, bisection, per-cluster inverse iteration and the WY
  // back-transform all split across the pool; eigenvalues AND
  // eigenvectors must stay bitwise identical for any thread count.
  const std::size_t n = 200;
  const std::size_t m = 48;
  const RealMatrix matrix = random_symmetric(n, 88);

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  std::vector<EigenResult> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    pool.resize(threads);
    results.push_back(syevd_partial(matrix, m));
  }
  pool.resize(original_threads);

  for (std::size_t t = 1; t < results.size(); ++t) {
    for (std::size_t k = 0; k < m; ++k) {
      ASSERT_EQ(results[0].eigenvalues[k], results[t].eigenvalues[k])
          << "eigenvalue " << k << " at thread variant " << t;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(results[0].eigenvectors(i, k),
                  results[t].eigenvectors(i, k))
            << "eigenvector element (" << i << ", " << k
            << ") at thread variant " << t;
      }
    }
  }
}

TEST(SyevdPartialTest, RejectsBadWindows) {
  const RealMatrix matrix = random_symmetric(8, 91);
  EXPECT_THROW(syevd_partial(matrix, 0), NdftError);
  EXPECT_THROW(syevd_partial(matrix, 9), NdftError);
  EXPECT_THROW(syevd_partial(random_matrix(3, 4, 92), 2), NdftError);
}

TEST(SyevdPartialTest, CountsLessWorkThanFullSolve) {
  const RealMatrix matrix = random_symmetric(96, 93);
  OpCount partial;
  OpCount full;
  (void)syevd_partial(matrix, 8, &partial);
  (void)syevd(matrix, &full);
  EXPECT_GT(partial.flops, 0u);
  EXPECT_LT(partial.flops, full.flops);
  // Near the full window the call delegates and costs the full solve.
  OpCount wide;
  (void)syevd_partial(matrix, 96, &wide);
  EXPECT_EQ(wide.flops, full.flops);
}

TEST(HeevTest, RealSymmetricReducesToSyevd) {
  const RealMatrix m = random_symmetric(12, 31);
  ComplexMatrix h(12, 12);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      h(i, j) = Complex{m(i, j), 0.0};
    }
  }
  const EigenResult real_result = syevd(m);
  const HermitianEigenResult hermitian_result = heev(h);
  ASSERT_EQ(hermitian_result.eigenvalues.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(hermitian_result.eigenvalues[i], real_result.eigenvalues[i],
                1e-9);
  }
}

class HeevPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HeevPropertyTest, ResidualAndOrthonormality) {
  const std::size_t n = GetParam();
  const ComplexMatrix h = random_hermitian(n, 200 + n);
  const HermitianEigenResult result = heev(h);
  ASSERT_EQ(result.eigenvalues.size(), n);
  // Residual ||H v - lambda v||.
  for (std::size_t j = 0; j < n; ++j) {
    double residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      Complex acc{};
      for (std::size_t k = 0; k < n; ++k) {
        acc += h(i, k) * result.eigenvectors(k, j);
      }
      acc -= result.eigenvalues[j] * result.eigenvectors(i, j);
      residual += std::norm(acc);
    }
    EXPECT_LT(std::sqrt(residual), 1e-8);
  }
  // Orthonormality.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      Complex dot{};
      for (std::size_t i = 0; i < n; ++i) {
        dot += std::conj(result.eigenvectors(i, a)) *
               result.eigenvectors(i, b);
      }
      EXPECT_NEAR(std::abs(dot), a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

// 40 embeds to an 80x80 real problem: several reduction panels deep.
INSTANTIATE_TEST_SUITE_P(Sizes, HeevPropertyTest,
                         ::testing::Values(1, 2, 4, 7, 12, 24, 40));

TEST(HeevTest, DegenerateEigenvaluesHandled) {
  // 2x identity block plus a distinct eigenvalue.
  ComplexMatrix h(3, 3);
  h(0, 0) = Complex{1.0, 0.0};
  h(1, 1) = Complex{1.0, 0.0};
  h(2, 2) = Complex{5.0, 0.0};
  const HermitianEigenResult result = heev(h);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[1], 1.0, 1e-12);
  EXPECT_NEAR(result.eigenvalues[2], 5.0, 1e-12);
}

TEST(LinalgTimerTest, AccumulatesAndResets) {
  linalg_timer_reset();
  EXPECT_EQ(linalg_timer_ms(), 0.0);
  const RealMatrix m = random_symmetric(96, 5);
  (void)syevd(m);
  EXPECT_GT(linalg_timer_ms(), 0.0);
  const double after_one = linalg_timer_ms();
  (void)syevd(m);
  EXPECT_GT(linalg_timer_ms(), after_one);  // tallies accumulate
  linalg_timer_reset();
  EXPECT_EQ(linalg_timer_ms(), 0.0);
}

}  // namespace
}  // namespace ndft::dft
