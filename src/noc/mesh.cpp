#include "noc/mesh.hpp"

#include <algorithm>
#include <array>
#include <deque>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ndft::noc {

MeshConfig MeshConfig::table3() {
  return MeshConfig{};  // 4x4, 120 GB/s links, 4 ns hops
}

// One node of the mesh: up to four link input ports (bounded by the link
// credits), up to four link output ports, and an unbounded injection
// staging FIFO for locally-originated packets whose first link is out of
// credits. The pump forwards head packets whose XY output has a credit
// and ejects packets addressed to this node (ejection is always accepted,
// which with XY routing makes the fabric deadlock-free). All queue scans
// run in a fixed order, so forwarding decisions are deterministic.
class Mesh::Router {
 public:
  Router(Mesh& mesh, unsigned id) : mesh_(mesh), id_(id) {
    for (unsigned direction = 0; direction < 4; ++direction) {
      auto& out = mesh_.links_[id_ * 4 + direction];
      if (out != nullptr) {
        out_[direction].bind(*out);
        out_[direction].on_credit([this] { pump(); });
      }
      const unsigned from = mesh_.neighbor(id_, direction);
      if (from == ~0u) continue;
      // The reverse direction pairs +x<->-x (0,1) and +y<->-y (2,3): the
      // neighbor in my `direction` reaches me over its opposite link.
      const unsigned reverse = direction ^ 1u;
      auto& in = mesh_.links_[from * 4 + reverse];
      if (in != nullptr) {
        in_[direction].bind(*in);
        in_[direction].on_receive([this] { pump(); });
      }
    }
  }
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Accepts a locally-originated packet (synchronous; from Mesh::send).
  void inject(MeshPacket packet) {
    if (staged_.empty() && can_forward(packet)) {
      forward(std::move(packet));
      return;
    }
    staged_.push_back(Staged{std::move(packet), mesh_.queue().now()});
    mesh_.stats().add("backpressure_stalls");
    const double depth = static_cast<double>(staged_.size());
    if (depth > mesh_.stats().get("staged_peak")) {
      mesh_.stats().set("staged_peak", depth);
    }
  }

  std::size_t staged() const noexcept { return staged_.size(); }

 private:
  struct Staged {
    MeshPacket packet;
    TimePs since;
  };

  unsigned route(unsigned dst) const noexcept {
    // XY: resolve x first, then y.
    const unsigned my_x = mesh_.node_x(id_);
    const unsigned my_y = mesh_.node_y(id_);
    const unsigned dst_x = mesh_.node_x(dst);
    const unsigned dst_y = mesh_.node_y(dst);
    if (dst_x > my_x) return 0;
    if (dst_x < my_x) return 1;
    return dst_y > my_y ? 2 : 3;
  }

  bool can_forward(const MeshPacket& packet) const {
    return out_[route(packet.dst)].can_send();
  }

  void forward(MeshPacket packet) {
    const unsigned direction = route(packet.dst);
    const Bytes wire_bytes = packet.wire_bytes;
    mesh_.link_bytes_[id_ * 4 + direction] += wire_bytes;
    out_[direction].send(std::move(packet), wire_bytes);
  }

  void eject(MeshPacket packet) {
    // The head arrived now; the body drains for one serialization time.
    const TimePs arrival = mesh_.queue().now() + packet.serialization;
    if (packet.on_delivered) {
      mesh_.queue().schedule_at(
          arrival, [cb = std::move(packet.on_delivered), arrival] {
            cb(arrival);
          });
    }
  }

  void pump() {
    bool progress = true;
    while (progress) {
      progress = false;
      while (!staged_.empty() && can_forward(staged_.front().packet)) {
        Staged entry = std::move(staged_.front());
        staged_.pop_front();
        mesh_.stats().add(
            "backpressure_stall_ps",
            static_cast<double>(mesh_.queue().now() - entry.since));
        forward(std::move(entry.packet));
        progress = true;
      }
      for (auto& in : in_) {
        if (!in.bound()) continue;
        while (!in.empty()) {
          if (in.front().dst == id_) {
            eject(in.pop());
            progress = true;
            continue;
          }
          if (!can_forward(in.front())) break;  // head-of-line: wait
          forward(in.pop());
          progress = true;
        }
      }
    }
  }

  Mesh& mesh_;
  unsigned id_;
  std::array<sim::InputPort<MeshPacket>, 4> in_;
  std::array<sim::OutputPort<MeshPacket>, 4> out_;
  std::deque<Staged> staged_;
};

Mesh::Mesh(std::string name, sim::EventQueue& queue, const MeshConfig& config)
    : SimObject(std::move(name), queue), config_(config) {
  NDFT_REQUIRE(config.width > 0 && config.height > 0,
               "mesh must have at least one node");
  NDFT_REQUIRE(config.link_gbps > 0.0, "link bandwidth must be positive");
  NDFT_REQUIRE(config.link_queue > 0, "link queue depth must be positive");
  const std::size_t slots = static_cast<std::size_t>(config.stacks()) * 4;
  links_.resize(slots);
  link_bytes_.assign(slots, 0);
  // Links are cut-through: a head that wins a link appears at the next
  // router one hop latency later while the body pipelines behind it, so
  // serialization is charged to the wire (free_at) but not to the head.
  sim::LinkConfig link;
  link.latency_ps = config.hop_latency_ps;
  link.gbps = config.link_gbps;
  link.capacity = config.link_queue;
  link.delivery = sim::Delivery::kCutThrough;
  for (unsigned node = 0; node < config.stacks(); ++node) {
    for (unsigned direction = 0; direction < 4; ++direction) {
      if (neighbor(node, direction) == ~0u) continue;
      links_[node * 4 + direction] =
          std::make_unique<sim::Connection<MeshPacket>>(this->queue(), link,
                                                        &stats());
    }
  }
  routers_.reserve(config.stacks());
  for (unsigned node = 0; node < config.stacks(); ++node) {
    routers_.push_back(std::make_unique<Router>(*this, node));
  }
}

Mesh::~Mesh() = default;

unsigned Mesh::neighbor(unsigned node, unsigned direction) const noexcept {
  const unsigned x = node_x(node);
  const unsigned y = node_y(node);
  switch (direction) {
    case 0: return x + 1 < config_.width ? node + 1 : ~0u;
    case 1: return x > 0 ? node - 1 : ~0u;
    case 2: return y + 1 < config_.height ? node + config_.width : ~0u;
    default: return y > 0 ? node - config_.width : ~0u;
  }
}

unsigned Mesh::hops(unsigned src, unsigned dst) const {
  NDFT_REQUIRE(src < config_.stacks() && dst < config_.stacks(),
               "node id out of range");
  const int dx = static_cast<int>(node_x(dst)) - static_cast<int>(node_x(src));
  const int dy = static_cast<int>(node_y(dst)) - static_cast<int>(node_y(src));
  return static_cast<unsigned>(std::abs(dx) + std::abs(dy));
}

double Mesh::energy_nj() const noexcept {
  double link_bytes = 0.0;
  for (const Bytes bytes : link_bytes_) {
    link_bytes += static_cast<double>(bytes);
  }
  return link_bytes * 8.0 * config_.link_pj_per_bit * 1e-3;  // pJ -> nJ
}

std::size_t Mesh::staged_packets() const noexcept {
  std::size_t total = 0;
  for (const auto& router : routers_) {
    total += router->staged();
  }
  return total;
}

void Mesh::send(unsigned src, unsigned dst, Bytes bytes,
                DeliveryFn on_delivered) {
  NDFT_REQUIRE(src < config_.stacks() && dst < config_.stacks(),
               "node id out of range");
  const Bytes wire_bytes = bytes + config_.packet_overhead;
  const TimePs serialization =
      transfer_time_ps(wire_bytes, config_.link_gbps);
  bytes_sent_ += bytes;
  stats().add("messages");
  stats().add("bytes", static_cast<double>(bytes));
  stats().add("hops", static_cast<double>(hops(src, dst)));

  if (src == dst) {
    // Local loopback: one router traversal, no link traffic.
    const TimePs arrival = now() + config_.hop_latency_ps + serialization;
    if (on_delivered) {
      queue().schedule_at(arrival,
                          [cb = std::move(on_delivered), arrival] {
                            cb(arrival);
                          });
    }
    return;
  }
  routers_[src]->inject(
      MeshPacket{dst, wire_bytes, serialization, std::move(on_delivered)});
}

}  // namespace ndft::noc
