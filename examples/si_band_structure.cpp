// Computes the classic Cohen-Bergstresser silicon band structure on the
// primitive FCC cell along L -> Gamma -> X -> K -> Gamma through the
// Engine API, prints an ASCII rendering and the direct/indirect gaps.
//
//   ./si_band_structure [ecut_ry] [segments]   (defaults: 9 Ry, 10)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/engine.hpp"

using namespace ndft;

namespace {
constexpr double kEvPerHa = 27.211386;
}

int main(int argc, char** argv) {
  api::BandStructureJob job;
  if (argc > 1) job.ecut_ry = std::strtod(argv[1], nullptr);
  if (argc > 2) job.segments = static_cast<unsigned>(
      std::strtoul(argv[2], nullptr, 10));
  job.bands = 8;          // 4 valence + 4 conduction
  job.valence_bands = 4;  // primitive cell: 2 atoms x 4 electrons / 2

  api::Engine engine;
  const api::JobResult result = engine.run(job);
  if (!result.ok()) {
    std::fprintf(stderr, "si_band_structure: %s\n",
                 result.error_message.c_str());
    for (const std::string& detail : result.error_details) {
      std::fprintf(stderr, "  - %s\n", detail.c_str());
    }
    return 1;
  }
  const api::BandStructurePayload& bands = *result.band_structure;
  std::printf("primitive Si cell: %zu plane waves at %.1f Ry\n",
              bands.basis_size, job.ecut_ry);

  // Reference energies to the valence-band maximum.
  const double vbm = bands.vbm_ha;
  std::printf("\n%-8s", "k");
  for (std::size_t b = 0; b < job.bands; ++b) {
    std::printf("  band%zu", b);
  }
  std::printf("   (eV relative to VBM)\n");
  for (const api::BandsAtKPayload& at_k : bands.path) {
    std::printf("%-8s", at_k.label.empty() ? "." : at_k.label.c_str());
    for (std::size_t b = 0; b < at_k.energies_ha.size(); ++b) {
      std::printf(" %6.2f", (at_k.energies_ha[b] - vbm) * kEvPerHa);
    }
    std::printf("\n");
  }

  std::printf("\nindirect gap: %.3f eV (VBM at %s, CBM at %s)\n",
              bands.indirect_gap_ev,
              bands.vbm_label.empty() ? "path" : bands.vbm_label.c_str(),
              bands.cbm_label.empty() ? "path" : bands.cbm_label.c_str());
  std::printf("direct gap at Gamma: %.3f eV\n", bands.direct_gap_gamma_ev);
  std::printf("(experiment: indirect 1.12 eV, direct ~3.4 eV; "
              "Cohen-Bergstresser EPM reproduces both near these values)\n");
  return 0;
}
