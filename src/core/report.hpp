#pragma once
// Run reports: per-kernel timing breakdowns in the shape of the paper's
// Figure 7, plus footprints and communication statistics.

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dft/workload.hpp"
#include "runtime/pseudo_store.hpp"

namespace ndft::core {

/// Execution mode (machine) for a run.
enum class ExecMode {
  kCpuBaseline,  ///< Section V Xeon server
  kGpuBaseline,  ///< Section V DGX-1
  kNdpOnly,      ///< all kernels on NDP, replicated pseudopotentials
  kNdft,         ///< the paper's co-design (scheduler + shared blocks)
};

/// Human-readable machine name.
const char* to_string(ExecMode mode) noexcept;

/// One kernel's simulated execution.
struct KernelTime {
  std::string name;
  KernelClass cls = KernelClass::kOther;
  DeviceKind device = DeviceKind::kCpu;
  TimePs time_ps = 0;
};

/// Result of simulating one LR-TDDFT iteration on one machine.
struct RunReport {
  ExecMode mode = ExecMode::kCpuBaseline;
  dft::SystemDims dims;
  std::vector<KernelTime> kernels;
  TimePs sched_overhead_ps = 0;  ///< Eq. 1 crossings (NDFT only)
  runtime::PseudoFootprint pseudo;
  Bytes mesh_bytes = 0;      ///< NDP fabric traffic
  Bytes sharing_bytes = 0;   ///< pseudopotential sharing traffic (NDFT)
  /// Memory-system energy (DRAM + fabric; GPU: HBM + PCIe) in millijoules,
  /// scaled up from the sampled windows like the kernel times.
  double memory_energy_mj = 0.0;
  /// Bounded roll-up of the simulated components' StatSet counters,
  /// aggregated per component class ("mesh.hops", "dram.row_hits",
  /// "serdes.backpressure_stall_ps", ...): counters sum across instances,
  /// *_peak keys take the maximum, and "dram.channel_utilization" is the
  /// derived fraction of aggregate DRAM peak bandwidth used over the
  /// simulated span. The key set is fixed by an allowlist (never one key
  /// per channel/core), so payload size does not scale with the machine.
  /// Empty for the analytic GPU baseline.
  std::map<std::string, double> stats;

  /// Total simulated time including scheduling overhead.
  TimePs total_ps() const noexcept;

  /// Summed time of all kernels of one class.
  TimePs time_of(KernelClass cls) const noexcept;

  /// The paper's "Global Comm" bucket: Alltoall plus sharing traffic time.
  TimePs global_comm_ps() const noexcept {
    return time_of(KernelClass::kAlltoall);
  }

  /// Renders the Fig. 7-style breakdown as an aligned text table.
  std::string render() const;
};

/// Speedup of `baseline` over `candidate` (how much faster candidate is).
double speedup(const RunReport& baseline, const RunReport& candidate);

/// Renders the Fig. 7-style per-kernel table for any kernel list (shared
/// by RunReport::render and the serialized-payload consumers, so the two
/// presentations cannot drift apart).
std::string render_kernel_table(ExecMode mode, std::size_t atoms,
                                const std::vector<KernelTime>& kernels,
                                TimePs total_ps, TimePs sched_overhead_ps,
                                double memory_energy_mj);

}  // namespace ndft::core
