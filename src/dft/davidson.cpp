#include "dft/davidson.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/kernel_trace.hpp"

namespace ndft::dft {
namespace {

/// Orthonormalises `candidate` against the columns of `basis` (modified
/// Gram-Schmidt, two passes); returns false if it vanished.
bool orthonormalise(const std::vector<std::vector<double>>& basis,
                    std::vector<double>& candidate) {
  const std::size_t n = candidate.size();
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& b : basis) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += b[i] * candidate[i];
      for (std::size_t i = 0; i < n; ++i) candidate[i] -= dot * b[i];
    }
  }
  double norm2 = 0.0;
  for (const double v : candidate) norm2 += v * v;
  if (norm2 < 1e-20) {
    return false;
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (double& v : candidate) v *= inv;
  return true;
}

}  // namespace

DavidsonResult davidson(std::size_t n, const ApplyFn& apply,
                        const std::vector<double>& diagonal,
                        const DavidsonConfig& config) {
  NDFT_REQUIRE(n > 0, "operator dimension must be positive");
  NDFT_REQUIRE(diagonal.size() == n, "diagonal length must match n");
  NDFT_REQUIRE(config.wanted > 0 && config.wanted <= n,
               "wanted eigenpair count out of range");
  const std::size_t block = std::min<std::size_t>(
      std::max(config.block, config.wanted), n);
  const std::size_t max_subspace =
      std::min<std::size_t>(config.max_subspace == 0
                                ? 8 * config.wanted + block
                                : config.max_subspace,
                            n);
  NDFT_REQUIRE(max_subspace >= 2 * config.wanted || max_subspace == n,
               "subspace cap too small for the request");

  DavidsonResult result;

  // Initial guesses: unit vectors on the smallest diagonal entries.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return diagonal[a] < diagonal[b];
  });
  std::vector<std::vector<double>> basis;    // V
  std::vector<std::vector<double>> applied;  // W = A V
  for (std::size_t b = 0; b < block; ++b) {
    std::vector<double> v(n, 0.0);
    v[order[b]] = 1.0;
    basis.push_back(std::move(v));
  }

  std::vector<double> ritz_values;
  RealMatrix ritz_vectors;

  for (unsigned iteration = 1; iteration <= config.max_iterations;
       ++iteration) {
    cancel_point();  // sweep stage boundary
    result.iterations = iteration;
    // Apply the operator to any new basis vectors. The batch is one trace
    // event (the paper's response-GEMM hot loop); matrix-free callbacks
    // account their own work through trace_add_work.
    {
      TraceRegion region(KernelClass::kGemm, "davidson.apply");
      region.set_dims(n, basis.size() - applied.size(), 0);
      region.set_io((basis.size() - applied.size()) * n * sizeof(double),
                    (basis.size() - applied.size()) * n * sizeof(double));
      while (applied.size() < basis.size()) {
        std::vector<double> w(n);
        apply(basis[applied.size()], w);
        ++result.operator_applications;
        applied.push_back(std::move(w));
      }
    }

    // Rayleigh-Ritz in the subspace, through the blocked GEMM kernels:
    // V W^T for the projected operator, then coefficient contractions for
    // the Ritz vectors and residuals.
    const std::size_t m = basis.size();
    RealMatrix vmat(m, n);
    RealMatrix wmat(m, n);
    for (std::size_t a = 0; a < m; ++a) {
      std::copy(basis[a].begin(), basis[a].end(), vmat.row(a));
      std::copy(applied[a].begin(), applied[a].end(), wmat.row(a));
    }
    RealMatrix projected;
    gemm(vmat, wmat, projected, 1.0, 0.0, /*transpose_a=*/false,
         /*transpose_b=*/true);
    // The operator is symmetric; average away the finite-precision skew.
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = a + 1; b < m; ++b) {
        const double mean = 0.5 * (projected(a, b) + projected(b, a));
        projected(a, b) = mean;
        projected(b, a) = mean;
      }
    }
    // Only the lowest `keep` Ritz pairs are consumed (values, vectors and
    // the restart basis), so the subspace solve goes partial.
    const std::size_t keep = std::min(config.wanted, m);
    const EigenResult small = syevd_partial(projected, keep);
    ritz_values.assign(small.eigenvalues.begin(),
                       small.eigenvalues.begin() +
                           static_cast<std::ptrdiff_t>(keep));
    RealMatrix coeffs(m, keep);
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t k = 0; k < keep; ++k) {
        coeffs(a, k) = small.eigenvectors(a, k);
      }
    }
    RealMatrix xmat;
    RealMatrix rmat;
    gemm(coeffs, vmat, xmat, 1.0, 0.0, /*transpose_a=*/true);
    gemm(coeffs, wmat, rmat, 1.0, 0.0, /*transpose_a=*/true);

    ritz_vectors = RealMatrix(n, keep);
    bool all_converged = true;
    std::vector<std::vector<double>> residuals;
    for (std::size_t k = 0; k < keep; ++k) {
      std::vector<double> r(n, 0.0);
      double rnorm2 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = xmat(k, i);
        r[i] = rmat(k, i) - ritz_values[k] * x;
        rnorm2 += r[i] * r[i];
        ritz_vectors(i, k) = x;
      }
      if (std::sqrt(rnorm2) > config.tolerance) {
        all_converged = false;
        residuals.push_back(std::move(r));
      }
    }

    if (all_converged && m >= config.wanted) {
      result.converged = true;
      break;
    }

    // Restart: collapse the subspace onto the current Ritz vectors.
    if (m + residuals.size() > max_subspace) {
      std::vector<std::vector<double>> fresh;
      for (std::size_t k = 0; k < keep; ++k) {
        std::vector<double> x(n);
        for (std::size_t i = 0; i < n; ++i) x[i] = ritz_vectors(i, k);
        if (orthonormalise(fresh, x)) {
          fresh.push_back(std::move(x));
        }
      }
      basis = std::move(fresh);
      applied.clear();
    }

    // Preconditioned residual expansion: r_i /= (diag_i - theta).
    for (std::size_t k = 0; k < residuals.size(); ++k) {
      std::vector<double>& r = residuals[k];
      const double theta = ritz_values[std::min(k, ritz_values.size() - 1)];
      for (std::size_t i = 0; i < n; ++i) {
        const double denom = diagonal[i] - theta;
        r[i] /= (std::fabs(denom) > 1e-6) ? denom
                                          : std::copysign(1e-6, denom);
      }
      if (orthonormalise(basis, r)) {
        basis.push_back(std::move(r));
      }
      if (basis.size() >= max_subspace) break;
    }
    if (basis.size() == applied.size()) {
      // No expansion vector survived orthogonalisation: stagnated, but
      // the Ritz pairs are the best available answer.
      break;
    }
  }

  result.eigenvalues = std::move(ritz_values);
  result.eigenvectors = std::move(ritz_vectors);
  return result;
}

DavidsonResult davidson(const RealMatrix& symmetric,
                        const DavidsonConfig& config) {
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "davidson: matrix must be square");
  const std::size_t n = symmetric.rows();
  NDFT_REQUIRE(config.wanted > 0 && config.wanted <= n,
               "wanted eigenpair count out of range");
  unsigned attempted_iterations = 0;
  if (!fault_fires("solver.davidson")) {
    std::vector<double> diagonal(n);
    for (std::size_t i = 0; i < n; ++i) diagonal[i] = symmetric(i, i);
    const ApplyFn apply = [&symmetric, n](const std::vector<double>& x,
                                          std::vector<double>& y) {
      y.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double* row = symmetric.row(i);
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
        y[i] = acc;
      }
      trace_add_work(2ull * n * n, (n * n + 2 * n) * sizeof(double));
    };
    DavidsonResult iterative = davidson(n, apply, diagonal, config);
    if (iterative.converged) return iterative;
    attempted_iterations = iterative.iterations;
  }
  // Graceful degradation: the iterative solver was skipped (injected
  // fault) or stagnated; the dense partial solver always has the matrix
  // in hand, so answer from it instead of surfacing a half-converged
  // subspace.
  note_degradation("davidson:dense_fallback");
  const EigenResult dense = syevd_partial(symmetric, config.wanted);
  DavidsonResult result;
  result.converged = true;
  result.iterations = attempted_iterations;
  result.eigenvalues.assign(
      dense.eigenvalues.begin(),
      dense.eigenvalues.begin() +
          static_cast<std::ptrdiff_t>(config.wanted));
  result.eigenvectors = dense.eigenvectors;
  return result;
}

}  // namespace ndft::dft
