#pragma once
// The full near-data memory system: a 4x4 mesh of HBM stacks (Table III)
// plus the host CPU's path into it. The same 64 GiB of HBM serves as the
// machine's main memory: the CPU reaches it over SerDes links into the
// mesh, while NDP cores access their stack-local channels directly.

#include <functional>
#include <memory>
#include <vector>

#include "common/json.hpp"
#include "cpu/trace.hpp"
#include "mem/mem_request.hpp"
#include "ndp/ndp_stack.hpp"
#include "noc/mesh.hpp"
#include "sim/port.hpp"

namespace ndft::ndp {

/// Configuration of the whole NDP memory system.
struct NdpSystemConfig {
  noc::MeshConfig mesh = noc::MeshConfig::table3();
  NdpStackConfig stack = NdpStackConfig::table3();
  unsigned cpu_links = 4;            ///< SerDes links from the CPU package
  double cpu_link_gbps = 120.0;      ///< per-link bandwidth
  TimePs serdes_latency_ps = 10000;  ///< one-way SerDes + PHY latency
  Bytes request_bytes = 32;          ///< read/write request packet size
  Bytes response_overhead = 16;      ///< header on a data response
  /// In-flight requests per SerDes link (credits). The default exceeds
  /// the aggregate MLP the host complex can offer, so the bound is
  /// behavior-neutral until a machine config tightens it.
  std::size_t cpu_link_queue = 256;

  unsigned stacks() const noexcept { return mesh.stacks(); }
  unsigned total_cores() const noexcept {
    return stacks() * stack.total_cores();
  }
  Bytes total_capacity() const noexcept {
    return static_cast<Bytes>(stacks()) * stack.dram.channels *
           stack.dram.geometry.channel_capacity();
  }

  /// Table III NDP system (16 stacks, 64 GiB, 128 NDP units).
  static NdpSystemConfig table3();

  /// Parses an "ndft.machine.v1" hardware description (machine_json.cpp).
  /// Strict: unknown members are rejected so a typo'd sweep fails loudly.
  /// Throws NdftError on any violation.
  static NdpSystemConfig from_json(const Json& j);

  /// Serializes this config as an "ndft.machine.v1" document;
  /// from_json(to_json()) round-trips bitwise.
  Json to_json() const;
};

/// The CPU-visible memory port plus all NDP compute resources.
class NdpSystem {
 public:
  NdpSystem(const std::string& name, sim::EventQueue& queue,
            const NdpSystemConfig& config);

  /// Port the host CPU's L3 misses go into (SerDes + mesh + stack DRAM).
  mem::MemoryPort& cpu_port() noexcept { return *cpu_port_; }

  /// Runs one trace per NDP core (round-robin across stacks so work and
  /// data spread evenly); `on_done` fires when all traces retired.
  void run(const std::vector<const cpu::Trace*>& traces,
           std::function<void()> on_done);

  unsigned stack_count() const noexcept {
    return static_cast<unsigned>(stacks_.size());
  }
  NdpStack& stack(unsigned i) { return *stacks_.at(i); }
  noc::Mesh& mesh() noexcept { return *mesh_; }
  const NdpSystemConfig& config() const noexcept { return config_; }

  /// Which stack an NDP core index (global, round-robin) lives in.
  unsigned stack_of_core(unsigned global_core) const noexcept {
    return global_core % stack_count();
  }

  /// Flushes every NDP L1, writing dirty lines back.
  void flush_caches();

  /// Drops all cached lines without writebacks (between sampled windows).
  void invalidate_caches();

  /// Aggregates statistics from stacks and mesh under `prefix`.
  void collect_stats(const std::string& prefix, sim::StatSet& out) const;

  /// Total memory-system energy so far (nJ): stack HBM + mesh traffic.
  double energy_nj() const;

  /// Stack-DRAM energy only (nJ); subject to trace-sampling scaling.
  double dram_energy_nj() const;

  /// Stack-DRAM dynamic (command-only) energy (nJ).
  double dram_dynamic_energy_nj() const;

  /// Total background power of all stack channels, in milliwatts.
  double dram_background_mw() const;

 private:
  /// One CPU line request crossing a SerDes link into the mesh.
  struct CpuRequestMsg {
    unsigned stack = 0;   ///< owning HBM stack
    unsigned entry = 0;   ///< mesh entry/exit corner
    Addr local = 0;       ///< stack-local address
    Bytes data_bytes = 0;
    bool is_write = false;
    mem::MemCallback on_complete;
  };
  /// A read's data coming back out of the mesh over SerDes.
  struct CpuResponseMsg {
    mem::MemCallback on_complete;
  };

  /// Adapts CPU line requests onto the mesh + stack DRAM round trip.
  class CpuPort : public mem::MemoryPort {
   public:
    explicit CpuPort(NdpSystem& owner) : owner_(&owner) {}
    void access(mem::MemRequest req) override;

   private:
    NdpSystem* owner_;
  };

  /// Receiver at the mesh side of a SerDes link: forwards the request
  /// across the mesh, into the owning stack's DRAM, and routes a read's
  /// data back over the response connection.
  void handle_cpu_request(CpuRequestMsg msg);

  /// Stack that owns a physical address (line-interleaved).
  unsigned stack_of_addr(Addr addr) const noexcept;
  /// Mesh entry node used by the CPU for a given stack (nearest corner).
  unsigned entry_node_for(unsigned stack) const noexcept;
  /// Stack-local address for a global address.
  Addr local_addr(Addr addr) const noexcept;

  NdpSystemConfig config_;
  sim::EventQueue* queue_;
  std::unique_ptr<noc::Mesh> mesh_;
  std::vector<std::unique_ptr<NdpStack>> stacks_;
  std::unique_ptr<CpuPort> cpu_port_;
  // SerDes fabric: one bounded store-forward connection per outbound CPU
  // link (serialization + PHY latency, request picks the least-loaded
  // wire) and one latency-only return connection for read data leaving
  // the mesh. All share serdes_stats_ ("contention_ps",
  // "backpressure_stall_ps", ...), merged by collect_stats().
  sim::StatSet serdes_stats_;
  std::vector<std::unique_ptr<sim::Connection<CpuRequestMsg>>> cpu_links_;
  std::vector<std::unique_ptr<sim::OutputPort<CpuRequestMsg>>> cpu_link_out_;
  std::vector<std::unique_ptr<sim::CreditedSender<CpuRequestMsg>>>
      cpu_link_senders_;
  std::unique_ptr<sim::Connection<CpuResponseMsg>> cpu_response_;
  std::unique_ptr<sim::OutputPort<CpuResponseMsg>> cpu_response_out_;
  std::unique_ptr<sim::CreditedSender<CpuResponseMsg>> cpu_response_sender_;
  unsigned running_ = 0;
  std::function<void()> on_done_;
};

}  // namespace ndft::ndp
