#pragma once
// Minimal HTTP/1.1 message model and incremental parser — just enough
// protocol for the NDFT service: request/response start lines, headers,
// content-length and chunked bodies, keep-alive, and pipelining (bytes
// past one message are kept as remainder() for the next parse).
//
// Not implemented on purpose: TLS, compression, trailers, multipart,
// 100-continue. Violations of the implemented subset park the parser in
// State::kError with a suggested status code (400/413/431/505) the
// server echoes back before closing.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ndft::net {

/// Byte ceilings enforced while parsing; crossing one is a parse error
/// (413 for bodies, 431 for headers), not an exception.
struct HttpLimits {
  std::size_t max_start_line = 8 * 1024;
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 16 * 1024 * 1024;
};

/// One parsed request. Header names are lowercased on parse; values keep
/// their case with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET"
  std::string target;   // raw request target, e.g. "/v1/jobs/3?wait_ms=50"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  std::string client;  // peer address, filled in by the server

  /// First value of a header (lowercase name), or "" when absent.
  std::string header(const std::string& name) const;
  /// target without the query string.
  std::string path() const;
  /// Value of one query parameter ("" when absent). No %-decoding: the
  /// service only uses numeric parameters.
  std::string query(const std::string& name) const;
  /// HTTP/1.1 defaults to keep-alive unless "Connection: close".
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Serializes status line + headers + body, adding Content-Length and a
  /// Connection header matching `keep_alive`.
  std::string serialize(bool keep_alive) const;
};

/// Canonical reason phrase for the status codes the service emits.
const char* status_reason(int status);

/// Incremental push parser: feed() bytes as they arrive, check state().
/// After kDone, take the message, call reset(), and re-feed remainder()
/// to support pipelined messages on one connection.
class HttpParser {
 public:
  enum class Kind { kRequest, kResponse };
  enum class State { kNeedMore, kDone, kError };

  explicit HttpParser(Kind kind, HttpLimits limits = HttpLimits())
      : kind_(kind), limits_(limits) {}

  /// Consumes bytes; cheap to call with partial data. Returns state().
  State feed(const char* data, std::size_t size);
  State feed(const std::string& data) { return feed(data.data(), data.size()); }

  State state() const noexcept { return state_; }
  /// On kError: the HTTP status the peer should see (400/413/431/505).
  int error_status() const noexcept { return error_status_; }
  const std::string& error_detail() const noexcept { return error_detail_; }

  /// Valid once state() == kDone.
  const HttpRequest& request() const { return request_; }
  /// Response status/headers/body for Kind::kResponse parsing.
  const HttpResponse& response() const { return response_; }
  /// Bytes received past the end of the completed message.
  const std::string& remainder() const noexcept { return remainder_; }

  /// Clears everything (including remainder) for the next message.
  void reset();

 private:
  enum class Phase { kStartLine, kHeaders, kBody, kChunkSize, kChunkData,
                     kChunkEnd, kChunkTrailer };

  void fail(int status, const std::string& detail);
  bool parse_start_line(const std::string& line);
  bool parse_header_line(const std::string& line);
  void headers_complete();
  void finish();
  void process();

  Kind kind_;
  HttpLimits limits_;
  State state_ = State::kNeedMore;
  Phase phase_ = Phase::kStartLine;
  int error_status_ = 0;
  std::string error_detail_;
  std::string buffer_;        // unconsumed input
  std::size_t header_bytes_ = 0;
  std::size_t body_expected_ = 0;  // content-length mode
  bool chunked_ = false;
  std::size_t chunk_remaining_ = 0;
  HttpRequest request_;
  HttpResponse response_;
  std::string remainder_;
};

}  // namespace ndft::net
