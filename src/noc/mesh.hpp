#pragma once
// 2D-mesh memory network connecting the HBM stacks (Table III: 4x4 stacks
// in mesh). Wormhole model on the port/connection fabric: one Router
// component per node, one bounded credit-flow-controlled Connection per
// directed link. A message's head reserves each link along its XY route
// hop by hop; serialization is paid once at ejection (the body pipelines
// behind the head), contention comes from per-link wire occupancy, and
// back-pressure from exhausted link credits stalls upstream routers —
// packets then wait in the (observable) injection staging of their source
// router instead of growing hidden in-network buffers.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/port.hpp"
#include "sim/sim_object.hpp"

namespace ndft::noc {

/// Callback invoked when a message is fully delivered.
using DeliveryFn = std::function<void(TimePs)>;

/// Mesh geometry and link parameters.
struct MeshConfig {
  unsigned width = 4;
  unsigned height = 4;
  double link_gbps = 120.0;      ///< per-direction link bandwidth (SerDes)
  TimePs hop_latency_ps = 4000;  ///< router traversal + wire, per hop
  Bytes packet_overhead = 16;    ///< header/CRC bytes per message
  double link_pj_per_bit = 4.0;  ///< SerDes + router energy per bit-hop
  /// Per-link input buffer depth (credits). Deep enough by default that
  /// the Table-III alltoall burst pipelines as the pre-fabric analytic
  /// model did; shrink it to make back-pressure bite (fabric tests do).
  std::size_t link_queue = 16;

  unsigned stacks() const noexcept { return width * height; }

  /// Table III network: 4x4 stacks.
  static MeshConfig table3();
};

/// One in-flight message (head flit + pipelined body).
struct MeshPacket {
  unsigned dst = 0;
  Bytes wire_bytes = 0;      ///< payload + packet overhead
  TimePs serialization = 0;  ///< paid once, at ejection
  DeliveryFn on_delivered;
};

/// The stack-to-stack mesh. Node ids are row-major: id = y*width + x.
class Mesh : public sim::SimObject {
 public:
  Mesh(std::string name, sim::EventQueue& queue, const MeshConfig& config);
  ~Mesh();

  /// Sends `bytes` from `src` to `dst`; `on_delivered` fires at arrival.
  /// A zero-hop send (src == dst) costs one hop latency (local loopback).
  /// Never blocks the caller: when the source router's outgoing link is
  /// out of credits the packet waits in that router's injection staging
  /// (accounted under "backpressure_stall*" in stats()).
  void send(unsigned src, unsigned dst, Bytes bytes,
            DeliveryFn on_delivered);

  /// Manhattan distance between two nodes.
  unsigned hops(unsigned src, unsigned dst) const;

  /// Total bytes injected so far.
  Bytes bytes_sent() const noexcept { return bytes_sent_; }

  /// Energy of all traffic so far (nJ): bytes carried per link times the
  /// per-bit-hop cost.
  double energy_nj() const noexcept;

  /// Packets currently waiting in injection staging across all routers
  /// (back-pressure visible at the edge; in-network queues stay bounded
  /// by link_queue).
  std::size_t staged_packets() const noexcept;

  const MeshConfig& config() const noexcept { return config_; }

 private:
  class Router;
  friend class Router;

  unsigned node_x(unsigned id) const noexcept { return id % config_.width; }
  unsigned node_y(unsigned id) const noexcept { return id / config_.width; }
  /// Neighbor of `node` in `direction` (0=+x, 1=-x, 2=+y, 3=-y), or
  /// ~0u when the link would leave the mesh.
  unsigned neighbor(unsigned node, unsigned direction) const noexcept;

  MeshConfig config_;
  // Directed links, indexed [node*4 + direction]; null at mesh edges.
  std::vector<std::unique_ptr<sim::Connection<MeshPacket>>> links_;
  std::vector<Bytes> link_bytes_;  // per-directed-link traffic (energy)
  std::vector<std::unique_ptr<Router>> routers_;
  Bytes bytes_sent_ = 0;
};

}  // namespace ndft::noc
