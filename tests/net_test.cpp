// The HTTP service layer (ctest label: net, RUN_SERIAL).
//
// Covers, bottom up: the HTTP/1.1 parser (framing, keep-alive,
// pipelining, limit violations), the ndft.job_request.v1 wire schema,
// the Service route table in-process (auth, rate limits, quotas,
// malformed-request fuzz with zero engine-state leakage), and the full
// socket path end to end — including the 16-client concurrent==serial
// bitwise stress test and deterministic net.accept fault replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/request_json.hpp"
#include "common/fault.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "net/service.hpp"

namespace ndft {
namespace {

using api::Engine;
using api::EngineConfig;
using api::JobRequest;
using api::JobResult;
using net::HttpClient;
using net::HttpParser;
using net::HttpRequest;
using net::HttpResponse;
using net::HttpServer;
using net::ServerConfig;
using net::Service;
using net::ServiceConfig;

EngineConfig fast_config(std::size_t dispatch_threads = 2) {
  EngineConfig config;
  config.dispatch_threads = dispatch_threads;
  config.system.sampled_ops_per_kernel = 20000;
  config.system.min_ops_per_core = 200;
  return config;
}

ServiceConfig quiet_service() {
  ServiceConfig config;
  config.log = nullptr;
  return config;
}

/// Engine + Service + HttpServer on an ephemeral loopback port.
struct TestServer {
  Engine engine;
  Service service;
  HttpServer server;

  explicit TestServer(EngineConfig engine_config = fast_config(),
                      ServiceConfig service_config = quiet_service(),
                      ServerConfig server_config = ServerConfig())
      : engine(std::move(engine_config)),
        service(engine, std::move(service_config)),
        server(std::move(server_config), [this](const HttpRequest& request) {
          return service.handle(request);
        }) {
    server.start();
  }

  HttpClient client() { return HttpClient("127.0.0.1", server.port()); }
};

/// Value of an unlabelled counter/gauge in Prometheus text format.
std::uint64_t metric_value(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const std::size_t pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << "metric " << name << " missing";
  if (pos == std::string::npos) return ~0ull;
  const std::size_t start = pos + needle.size();
  return std::stoull(text.substr(start));
}

// ------------------------------------------------------------ HTTP parser

TEST(HttpParserTest, ParsesContentLengthRequest) {
  HttpParser parser(HttpParser::Kind::kRequest);
  const std::string wire =
      "POST /v1/jobs?wait_ms=50 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "{\"a\"";
  ASSERT_EQ(parser.feed(wire), HttpParser::State::kDone);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path(), "/v1/jobs");
  EXPECT_EQ(request.query("wait_ms"), "50");
  EXPECT_EQ(request.header("content-type"), "application/json");
  EXPECT_EQ(request.body, "{\"a\"");
  EXPECT_TRUE(request.keep_alive());
}

TEST(HttpParserTest, ParsesChunkedBodyAcrossFeeds) {
  HttpParser parser(HttpParser::Kind::kRequest);
  const std::string wire =
      "POST /v1/jobs HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "5\r\nhello\r\n"
      "6\r\n world\r\n"
      "0\r\n\r\n";
  // Feed byte by byte: the parser must be restartable at any boundary.
  for (char c : wire) {
    ASSERT_NE(parser.feed(&c, 1), HttpParser::State::kError);
  }
  ASSERT_EQ(parser.state(), HttpParser::State::kDone);
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpParserTest, PipelinedRequestsSurviveViaRemainder) {
  HttpParser parser(HttpParser::Kind::kRequest);
  const std::string wire =
      "GET /healthz HTTP/1.1\r\n\r\n"
      "GET /metrics HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parser.feed(wire), HttpParser::State::kDone);
  EXPECT_EQ(parser.request().target, "/healthz");
  const std::string rest = parser.remainder();
  parser.reset();
  ASSERT_EQ(parser.feed(rest), HttpParser::State::kDone);
  EXPECT_EQ(parser.request().target, "/metrics");
  EXPECT_TRUE(parser.remainder().empty());
}

TEST(HttpParserTest, RejectsProtocolViolations) {
  struct Case {
    const char* wire;
    int status;
  };
  const Case cases[] = {
      {"GARBAGE\r\n\r\n", 400},
      {"GET / HTTP/2.0\r\n\r\n", 505},
      {"GET relative HTTP/1.1\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nbad header line\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked"
       "\r\n\r\n",
       400},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n", 400},
  };
  for (const Case& c : cases) {
    HttpParser parser(HttpParser::Kind::kRequest);
    parser.feed(std::string(c.wire));
    EXPECT_EQ(parser.state(), HttpParser::State::kError) << c.wire;
    EXPECT_EQ(parser.error_status(), c.status) << c.wire;
  }
}

TEST(HttpParserTest, EnforcesByteLimits) {
  net::HttpLimits limits;
  limits.max_start_line = 64;
  limits.max_header_bytes = 256;
  limits.max_body_bytes = 32;

  HttpParser long_target(HttpParser::Kind::kRequest, limits);
  long_target.feed("GET /" + std::string(200, 'x') + " HTTP/1.1\r\n\r\n");
  EXPECT_EQ(long_target.state(), HttpParser::State::kError);
  EXPECT_EQ(long_target.error_status(), 431);

  HttpParser long_headers(HttpParser::Kind::kRequest, limits);
  long_headers.feed("GET / HTTP/1.1\r\nx-pad: " + std::string(400, 'y') +
                    "\r\n\r\n");
  EXPECT_EQ(long_headers.state(), HttpParser::State::kError);
  EXPECT_EQ(long_headers.error_status(), 431);

  HttpParser big_body(HttpParser::Kind::kRequest, limits);
  big_body.feed("POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n");
  EXPECT_EQ(big_body.state(), HttpParser::State::kError);
  EXPECT_EQ(big_body.error_status(), 413);

  HttpParser big_chunked(HttpParser::Kind::kRequest, limits);
  big_chunked.feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfff\r\n");
  EXPECT_EQ(big_chunked.state(), HttpParser::State::kError);
  EXPECT_EQ(big_chunked.error_status(), 413);
}

// ------------------------------------------------- request wire schema

TEST(RequestJsonTest, AllJobKindsRoundTrip) {
  std::vector<JobRequest> requests;
  api::ScfJob scf;
  scf.atoms = 16;
  scf.scf.scheme = dft::MixingScheme::kLinear;
  scf.scf.max_iterations = 7;
  scf.record_trace = true;
  requests.emplace_back(scf);

  api::BandStructureJob bands;
  bands.atoms = 8;
  bands.sampling = api::BandStructureJob::Sampling::kMonkhorstPack;
  bands.mp_grid[0] = 1;
  bands.mp_grid[1] = 2;
  bands.mp_grid[2] = 3;
  bands.deadline_ms = 1234.5;
  requests.emplace_back(bands);

  // Explicit sampling: the sharded front end's wire form of a sub-job.
  api::BandStructureJob explicit_bands;
  explicit_bands.sampling = api::BandStructureJob::Sampling::kExplicit;
  api::BandStructureJob::KPointSpec spec;
  spec.k[0] = 0.125;
  spec.k[1] = -0.25;
  spec.k[2] = 0.5;
  spec.weight = 0.375;
  spec.label = "Gamma";
  explicit_bands.kpoints.push_back(spec);
  spec.label.clear();
  spec.k[0] = -0.125;
  explicit_bands.kpoints.push_back(spec);
  requests.emplace_back(explicit_bands);

  api::LrtddftJob lrtddft;
  lrtddft.config.conduction_window = 6;
  lrtddft.oscillator_strengths = true;
  requests.emplace_back(lrtddft);

  api::SimulateJob simulate;
  simulate.mode = core::ExecMode::kNdpOnly;
  simulate.sampled_ops = 5000;
  requests.emplace_back(simulate);

  api::PlanJob plan;
  plan.granularity = runtime::Granularity::kKernel;
  plan.profile_override = {runtime::DeviceProfile::table3_cpu(),
                           runtime::DeviceProfile::table3_ndp()};
  requests.emplace_back(plan);

  api::CoDesignJob codesign;
  codesign.trace.atoms = 8;
  codesign.trace.basis_size = 128;
  codesign.trace.grid_points = 4096;
  TraceEvent event;
  event.cls = KernelClass::kGemm;
  event.name = "gemm";
  event.flops = 1000;
  event.bytes = 2000;
  codesign.trace.events.push_back(event);
  codesign.calibrate = false;
  requests.emplace_back(codesign);

  for (const JobRequest& request : requests) {
    const Json serialized = api::job_request_to_json(request);
    EXPECT_EQ(serialized.at("schema").as_string(), "ndft.job_request.v1");
    EXPECT_EQ(serialized.at("kind").as_string(), api::job_kind(request));
    const JobRequest rebuilt =
        api::job_request_from_json(Json::parse(serialized.dump(2)));
    // Doubles print with %.17g, so dump equality is bit equality.
    EXPECT_EQ(api::job_request_to_json(rebuilt).dump(2), serialized.dump(2))
        << api::job_kind(request) << " did not round-trip";
  }
}

TEST(RequestJsonTest, MinimalRequestGetsStructDefaults) {
  const Json minimal = Json::parse(
      "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"band_structure\","
      "\"job\":{}}");
  const JobRequest request = api::job_request_from_json(minimal);
  const auto& job = std::get<api::BandStructureJob>(request);
  const api::BandStructureJob defaults;
  EXPECT_EQ(job.atoms, defaults.atoms);
  EXPECT_EQ(job.ecut_ry, defaults.ecut_ry);
  EXPECT_EQ(job.segments, defaults.segments);
  EXPECT_EQ(job.bands, defaults.bands);
}

TEST(RequestJsonTest, RejectsUnknownKindAndBadSchema) {
  EXPECT_THROW(api::job_request_from_json(Json::parse(
                   "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"mine\","
                   "\"job\":{}}")),
               NdftError);
  EXPECT_THROW(api::job_request_from_json(Json::parse(
                   "{\"schema\":\"something.else\",\"kind\":\"plan\","
                   "\"job\":{}}")),
               NdftError);
  EXPECT_THROW(api::job_request_from_json(Json::parse(
                   "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"plan\","
                   "\"job\":[]}")),
               NdftError);
}

// ----------------------------------------------- service routes in-process

HttpRequest make_request(const std::string& method, const std::string& target,
                         const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.version = "HTTP/1.1";
  request.body = body;
  request.client = "test";
  return request;
}

std::string plan_request_body() {
  return api::job_request_to_json(api::PlanJob{}).dump();
}

TEST(ServiceTest, HealthzAndMetricsAreServed) {
  Engine engine(fast_config());
  Service service(engine, quiet_service());
  EXPECT_EQ(service.handle(make_request("GET", "/healthz")).status, 200);
  const HttpResponse metrics = service.handle(make_request("GET", "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metric_value(metrics.body, "ndft_engine_jobs_submitted_total"),
            0u);
  EXPECT_EQ(metric_value(metrics.body, "ndft_engine_pool_threads"),
            engine.pool_threads());
}

TEST(ServiceTest, JobLifecycleQueuedThenCancelled) {
  // dispatch_threads = 0: submitted jobs stay queued until drain(), so
  // the queued->cancelled path is deterministic.
  Engine engine(fast_config(/*dispatch_threads=*/0));
  Service service(engine, quiet_service());

  const HttpResponse posted =
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()));
  ASSERT_EQ(posted.status, 202) << posted.body;
  const Json stub = Json::parse(posted.body);
  const std::uint64_t id = stub.at("id").as_uint();
  EXPECT_EQ(stub.at("status").as_string(), "queued");
  std::string location;
  for (const auto& [key, value] : posted.headers) {
    if (key == "Location") location = value;
  }
  EXPECT_EQ(location, "/v1/jobs/" + std::to_string(id));

  const std::string target = "/v1/jobs/" + std::to_string(id);
  const HttpResponse polled = service.handle(make_request("GET", target));
  ASSERT_EQ(polled.status, 200);
  EXPECT_EQ(Json::parse(polled.body).at("status").as_string(), "queued");

  const HttpResponse cancelled =
      service.handle(make_request("DELETE", target));
  ASSERT_EQ(cancelled.status, 200);
  EXPECT_TRUE(Json::parse(cancelled.body).at("cancel_accepted").as_bool());

  // Terminal now: the GET returns the full ndft.job_result.v1 document.
  const HttpResponse final_poll = service.handle(make_request("GET", target));
  ASSERT_EQ(final_poll.status, 200);
  const Json result = Json::parse(final_poll.body);
  EXPECT_EQ(result.at("schema").as_string(), "ndft.job_result.v1");
  EXPECT_EQ(result.at("status").as_string(), "cancelled");

  const HttpResponse metrics = service.handle(make_request("GET", "/metrics"));
  EXPECT_EQ(metric_value(metrics.body, "ndft_engine_jobs_submitted_total"),
            1u);
  EXPECT_EQ(metric_value(metrics.body, "ndft_engine_jobs_cancelled_total"),
            1u);
  EXPECT_EQ(metric_value(metrics.body, "ndft_engine_jobs_pending"), 0u);

  EXPECT_EQ(service.handle(make_request("GET", "/v1/jobs/99999")).status, 404);
}

TEST(ServiceTest, BearerAuthGuardsJobRoutes) {
  Engine engine(fast_config(/*dispatch_threads=*/0));
  ServiceConfig config = quiet_service();
  config.auth_tokens = {"s3cret"};
  Service service(engine, config);

  // Liveness and metrics stay open; job routes are guarded.
  EXPECT_EQ(service.handle(make_request("GET", "/healthz")).status, 200);
  EXPECT_EQ(service.handle(make_request("GET", "/metrics")).status, 200);
  EXPECT_EQ(
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()))
          .status,
      401);

  HttpRequest bad = make_request("POST", "/v1/jobs", plan_request_body());
  bad.headers.emplace_back("authorization", "Bearer wrong");
  EXPECT_EQ(service.handle(bad).status, 401);

  HttpRequest good = make_request("POST", "/v1/jobs", plan_request_body());
  good.headers.emplace_back("authorization", "Bearer s3cret");
  EXPECT_EQ(service.handle(good).status, 202);
  EXPECT_EQ(engine.jobs_submitted(), 1u);
}

TEST(ServiceTest, TokenBucketRateLimitsPerClient) {
  Engine engine(fast_config(/*dispatch_threads=*/0));
  ServiceConfig config = quiet_service();
  config.rate_limit_per_s = 0.001;  // effectively no refill mid-test
  config.rate_burst = 2.0;
  Service service(engine, config);

  EXPECT_EQ(
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()))
          .status,
      202);
  EXPECT_EQ(
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()))
          .status,
      202);
  EXPECT_EQ(
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()))
          .status,
      429);
  // Another client address has its own bucket.
  HttpRequest other = make_request("POST", "/v1/jobs", plan_request_body());
  other.client = "other";
  EXPECT_EQ(service.handle(other).status, 202);
  EXPECT_EQ(engine.jobs_submitted(), 3u);
}

TEST(ServiceTest, RateLimit429AdvertisesComputedRetryAfter) {
  // The Retry-After on a rate-limit 429 must reflect the actual bucket
  // state: at 0.001 tokens/s an empty bucket refills one token in 1000
  // seconds, and telling the client "1" would guarantee its polite retry
  // another 429. The header is ceil(deficit / rate), floored at 1.
  Engine engine(fast_config(/*dispatch_threads=*/0));
  ServiceConfig config = quiet_service();
  config.rate_limit_per_s = 0.001;
  config.rate_burst = 1.0;
  Service service(engine, config);

  ASSERT_EQ(
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()))
          .status,
      202);
  const HttpResponse limited =
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()));
  ASSERT_EQ(limited.status, 429);
  std::string retry_after;
  for (const auto& [key, value] : limited.headers) {
    if (key == "Retry-After") retry_after = value;
  }
  // The bucket refilled for the elapsed microseconds between the two
  // requests, so the deficit is a hair under one full token: still 1000
  // seconds after the ceil unless the test stalls for a second or more.
  EXPECT_EQ(retry_after, "1000");
}

TEST(ServiceTest, MalformedWaitMsIsRejectedWith400) {
  // strtod parses "nan" and "inf" happily, and NaN slips past a plain
  // `< 0` guard; a NaN long-poll budget then poisons every duration
  // comparison downstream. All malformed forms must be a clean 400 —
  // and on POST, a 400 that leaves no trace in the engine.
  Engine engine(fast_config(/*dispatch_threads=*/0));
  Service service(engine, quiet_service());

  for (const char* bad : {"nan", "inf", "-inf", "-5", "10abc", "abc"}) {
    const HttpResponse posted = service.handle(make_request(
        "POST", std::string("/v1/jobs?wait_ms=") + bad, plan_request_body()));
    EXPECT_EQ(posted.status, 400) << "wait_ms=" << bad;
  }
  EXPECT_EQ(engine.jobs_submitted(), 0u);

  // Same contract on the poll route.
  const HttpResponse posted =
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()));
  ASSERT_EQ(posted.status, 202);
  const std::string target =
      "/v1/jobs/" + std::to_string(Json::parse(posted.body).at("id").as_uint());
  EXPECT_EQ(service.handle(make_request("GET", target + "?wait_ms=nan")).status,
            400);
  EXPECT_EQ(service.handle(make_request("GET", target + "?wait_ms=inf")).status,
            400);
  // A well-formed zero (and an absent parameter) still poll immediately.
  EXPECT_EQ(service.handle(make_request("GET", target + "?wait_ms=0")).status,
            200);
  EXPECT_EQ(service.handle(make_request("GET", target)).status, 200);
}

TEST(ServiceTest, QueueQuotaBoundsPerClientBacklog) {
  Engine engine(fast_config(/*dispatch_threads=*/0));
  ServiceConfig config = quiet_service();
  config.queue_quota = 2;
  Service service(engine, config);

  const HttpResponse first =
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()));
  ASSERT_EQ(first.status, 202);
  ASSERT_EQ(
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()))
          .status,
      202);
  EXPECT_EQ(
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()))
          .status,
      429);

  // Cancelling one job frees quota.
  const std::uint64_t id = Json::parse(first.body).at("id").as_uint();
  service.handle(make_request("DELETE", "/v1/jobs/" + std::to_string(id)));
  EXPECT_EQ(
      service.handle(make_request("POST", "/v1/jobs", plan_request_body()))
          .status,
      202);
}

TEST(ServiceTest, MalformedJobRequestsLeaveNoEngineState) {
  // The deterministic fuzz corpus of the parser boundary: every entry
  // must produce a clean 400 and leave the engine untouched.
  Engine engine(fast_config(/*dispatch_threads=*/0));
  Service service(engine, quiet_service());

  std::vector<std::string> corpus = {
      "",
      "not json at all",
      "{",
      "[1,2,3]",
      "{\"kind\":\"plan\",\"job\":{}}",  // missing schema
      "{\"schema\":\"ndft.job_request.v0\",\"kind\":\"plan\",\"job\":{}}",
      "{\"schema\":\"ndft.job_request.v1\",\"job\":{}}",  // missing kind
      "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"nonsense\","
      "\"job\":{}}",
      "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"plan\",\"job\":3}",
      "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"plan\","
      "\"job\":{\"atoms\":\"many\"}}",
      "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"band_structure\","
      "\"job\":{\"mp_grid\":[2,2]}}",
      "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"codesign\","
      "\"job\":{}}",  // codesign without the required trace
      "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"simulate\","
      "\"job\":{\"mode\":\"TPU\"}}",
      // Structurally valid but semantically invalid (validation layer):
      "{\"schema\":\"ndft.job_request.v1\",\"kind\":\"scf\","
      "\"job\":{\"atoms\":7}}",
  };
  // Deterministic truncations/corruptions of a valid request round out
  // the corpus (fixed seed: the same bytes every run).
  const std::string valid = plan_request_body();
  std::mt19937 rng(20260808u);
  for (int i = 0; i < 40; ++i) {
    std::string mutated = valid;
    const std::size_t cut = rng() % valid.size();
    if (i % 2 == 0) {
      mutated = valid.substr(0, cut);  // truncation
    } else {
      mutated[cut] = static_cast<char>(rng() % 256);  // byte corruption
    }
    if (mutated == valid) continue;
    // A corruption inside a number/string can still parse as valid JSON
    // with a valid shape; only keep mutations that are actually broken.
    try {
      (void)api::validate(api::job_request_from_json(Json::parse(mutated)));
      continue;
    } catch (const NdftError&) {
    }
    corpus.push_back(mutated);
  }

  for (const std::string& body : corpus) {
    const HttpResponse response =
        service.handle(make_request("POST", "/v1/jobs", body));
    EXPECT_EQ(response.status, 400) << "body: " << body;
    const Json error = Json::parse(response.body);
    EXPECT_TRUE(error.has("error")) << "body: " << body;
  }
  // Zero engine-side state leakage: nothing submitted, nothing queued.
  EXPECT_EQ(engine.jobs_submitted(), 0u);
  EXPECT_EQ(engine.jobs_pending(), 0u);
  // And the service still works: a valid request is accepted.
  EXPECT_EQ(service.handle(make_request("POST", "/v1/jobs", valid)).status,
            202);
}

// ----------------------------------------------------- end-to-end sockets

TEST(EndToEndTest, BandStructureOverWireMatchesInProcessBitwise) {
  // Serial in-process reference.
  Engine reference(fast_config(/*dispatch_threads=*/0));
  api::BandStructureJob job;
  job.segments = 2;
  const JobResult expected = reference.run(job);
  ASSERT_TRUE(expected.ok()) << expected.error_message;

  TestServer ts;
  HttpClient client = ts.client();
  const HttpResponse response = client.post(
      "/v1/jobs?wait_ms=60000", api::job_request_to_json(job).dump());
  ASSERT_EQ(response.status, 200) << response.body;

  const Json body = Json::parse(response.body);
  EXPECT_EQ(body.at("schema").as_string(), "ndft.job_result.v1");
  EXPECT_EQ(body.at("status").as_string(), "ok");
  // Bitwise identity of the physics: the payload (every energy, gap and
  // counter, printed with %.17g) must equal the in-process run exactly.
  // Timings and queue metadata legitimately differ across transports.
  EXPECT_EQ(body.at("payload").dump(),
            expected.to_json().at("payload").dump());
}

TEST(EndToEndTest, SixteenConcurrentClientsMatchSerialBitwise) {
  // The api_test stress mix, pushed over real sockets: 4 copies x 4
  // execution modes, 16 client threads, one POST each with a long poll.
  std::vector<JobRequest> requests;
  for (int copy = 0; copy < 4; ++copy) {
    for (const core::ExecMode mode :
         {core::ExecMode::kCpuBaseline, core::ExecMode::kGpuBaseline,
          core::ExecMode::kNdpOnly, core::ExecMode::kNdft}) {
      api::SimulateJob job;
      job.atoms = 16;
      job.mode = mode;
      requests.emplace_back(job);
    }
  }

  Engine serial(fast_config(/*dispatch_threads=*/0));
  std::vector<std::string> expected;
  for (const JobRequest& request : requests) {
    const JobResult result = serial.run(request);
    ASSERT_TRUE(result.ok()) << result.error_message;
    expected.push_back(result.to_json().at("payload").dump());
  }

  TestServer ts(fast_config(/*dispatch_threads=*/8));
  std::vector<std::string> actual(requests.size());
  std::vector<int> statuses(requests.size(), 0);
  std::vector<std::thread> clients;
  clients.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back([&, i] {
      HttpClient client("127.0.0.1", ts.server.port());
      const HttpResponse response =
          client.post("/v1/jobs?wait_ms=60000",
                      api::job_request_to_json(requests[i]).dump());
      statuses[i] = response.status;
      if (response.status == 200) {
        actual[i] = Json::parse(response.body).at("payload").dump();
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(statuses[i], 200) << "client " << i;
    EXPECT_EQ(actual[i], expected[i])
        << "job " << i << " diverged over the socket";
  }

  // /metrics reflects the storm exactly.
  HttpClient client = ts.client();
  const std::string metrics = client.get("/metrics").body;
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_submitted_total"), 16u);
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_completed_total"), 16u);
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_started_total"), 16u);
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_cancelled_total"), 0u);
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_retried_total"), 0u);
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_pending"), 0u);
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_running"), 0u);
  EXPECT_EQ(ts.service.responses_with_status(200), 17u);  // 16 posts + this
}

TEST(EndToEndTest, CancelOverSocketIsCounted) {
  TestServer ts(fast_config(/*dispatch_threads=*/0));
  HttpClient client = ts.client();

  const HttpResponse posted =
      client.post("/v1/jobs", plan_request_body());
  ASSERT_EQ(posted.status, 202) << posted.body;
  const std::uint64_t id = Json::parse(posted.body).at("id").as_uint();

  const HttpResponse cancelled =
      client.del("/v1/jobs/" + std::to_string(id));
  ASSERT_EQ(cancelled.status, 200);
  EXPECT_EQ(Json::parse(cancelled.body).at("status").as_string(),
            "cancelled");

  const std::string metrics = client.get("/metrics").body;
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_submitted_total"), 1u);
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_cancelled_total"), 1u);
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_completed_total"), 0u);
}

TEST(EndToEndTest, MalformedHttpGetsCleanErrorsAndNoEngineLeakage) {
  TestServer ts(fast_config(/*dispatch_threads=*/0));

  struct Case {
    const char* wire;
    int status;  // 0 = server just closes without a response (truncated)
  };
  const Case cases[] = {
      {"GARBAGE\r\n\r\n", 400},
      {"GET / HTTP/2.0\r\n\r\n", 505},
      {"POST /v1/jobs HTTP/1.1\r\nContent-Length: 999999999999999999999"
       "\r\n\r\n",
       400},
      {"POST /v1/jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n{}", 413},
      {"POST /v1/jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]", 400},
  };
  for (const Case& c : cases) {
    net::Socket socket = net::Socket::connect("127.0.0.1", ts.server.port());
    socket.send_all(std::string(c.wire));
    HttpParser parser(HttpParser::Kind::kResponse);
    char buf[4096];
    while (parser.state() == HttpParser::State::kNeedMore) {
      const long n = socket.recv_some(buf, sizeof(buf), 5000.0);
      ASSERT_GT(n, 0) << "no response for: " << c.wire;
      parser.feed(buf, static_cast<std::size_t>(n));
    }
    ASSERT_EQ(parser.state(), HttpParser::State::kDone) << c.wire;
    EXPECT_EQ(parser.response().status, c.status) << c.wire;
  }

  // Oversized body limit with a small configured cap gets 413 before the
  // body even arrives (tested above with the default 16M cap declared
  // larger than the limit). A connection truncated mid-headers must not
  // wedge the server either:
  {
    net::Socket socket = net::Socket::connect("127.0.0.1", ts.server.port());
    socket.send_all(std::string("POST /v1/jobs HTTP/1.1\r\nContent-Le"));
    socket.close();
  }

  // Zero engine-side leakage, and the server still serves valid traffic.
  HttpClient client = ts.client();
  EXPECT_EQ(client.get("/healthz").status, 200);
  const std::string metrics = client.get("/metrics").body;
  EXPECT_EQ(metric_value(metrics, "ndft_engine_jobs_submitted_total"), 0u);
  EXPECT_EQ(ts.engine.jobs_pending(), 0u);
}

TEST(EndToEndTest, NetAcceptFaultReplaysDeterministically) {
  // net.accept rides the NDFT_FAULTS grammar: the same spec must drop
  // the same connections (by sequence) across two independent runs.
  const auto run_pattern = [](int attempts) {
    fault_install(FaultSpec::parse("seed=11;net.accept=0.4"));
    std::vector<bool> pattern;
    std::uint64_t dropped = 0;
    {
      TestServer ts(fast_config(/*dispatch_threads=*/0));
      for (int i = 0; i < attempts; ++i) {
        // One fresh connection per attempt so the accept sequence is
        // exactly the attempt index.
        bool ok = false;
        try {
          HttpClient client("127.0.0.1", ts.server.port());
          ok = client.get("/healthz").status == 200;
        } catch (const NdftError&) {
          ok = false;  // connection dropped at accept
        }
        pattern.push_back(ok);
      }
      dropped = ts.server.connections_dropped();
    }
    fault_clear();
    std::size_t drops_seen = 0;
    for (const bool ok : pattern) drops_seen += ok ? 0 : 1;
    EXPECT_EQ(dropped, drops_seen);
    return pattern;
  };

  const std::vector<bool> first = run_pattern(12);
  const std::vector<bool> second = run_pattern(12);
  EXPECT_EQ(first, second) << "fault pattern did not replay";
  // The spec actually bites: some dropped, some served.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(EndToEndTest, GracefulShutdownDrainsInFlightWork) {
  auto ts = std::make_unique<TestServer>(fast_config(/*dispatch_threads=*/2));
  HttpClient client = ts->client();
  const HttpResponse posted = client.post(
      "/v1/jobs?wait_ms=60000",
      api::job_request_to_json(api::SimulateJob{.atoms = 16}).dump());
  ASSERT_EQ(posted.status, 200) << posted.body;
  // The daemon's drain sequence: stop the server, then drain the engine.
  ts->server.shutdown();
  ts->engine.drain();
  EXPECT_EQ(ts->engine.jobs_completed(), ts->engine.jobs_submitted());
}

}  // namespace
}  // namespace ndft
