#pragma once
// Roofline calibration: fits the SCA's CPU-side constants (peak GFLOP/s,
// sustained DRAM GB/s, blocked-panel efficiency) from the measured kernel
// times of a recorded trace, so the cost-aware scheduler prices the CPU
// side of the offload decision from the machine it actually ran on
// instead of the paper's Table III beliefs. This is the software half of
// the co-design loop: measure -> calibrate -> plan.
//
// Fit: each trace event is converted to its KernelWork descriptor and the
// roofline estimate max(flops / P_eff, dram_bytes / B) is matched against
// the measured wall time. P and B are chosen from the candidate rates the
// events themselves imply, minimising the worst-case multiplicative
// mismatch over the non-blocked events; the blocked-panel efficiency is
// then fitted the same way over the blocked (GEMM/SYEVD) events. Events
// below the significance floor (shorter than 0.05 ms or 2 % of the
// traced total — call overhead, not roofline behaviour, dominates there)
// and bookkeeping events (KernelClass::kOther — stages the analytic
// workload model does not price either) are excluded.

#include "common/kernel_trace.hpp"
#include "runtime/device_profile.hpp"

namespace ndft::runtime {

/// Outcome of fitting the CPU-side roofline constants to a trace.
struct CpuCalibration {
  /// The base profile with peak_gflops / dram_gbps /
  /// blocked_compute_efficiency replaced by the fitted values (the base
  /// is returned unchanged when no event qualifies).
  DeviceProfile profile;
  bool calibrated = false;      ///< at least one event entered the fit
  /// Worst multiplicative mismatch max(est/measured, measured/est) of the
  /// calibrated roofline across the fitted events.
  double max_ratio = 1.0;
  std::size_t fitted_events = 0;
  double fitted_ms = 0.0;       ///< summed measured time of fitted events
};

/// Fits the CPU-side constants of `base` to the measured kernel times of
/// `trace`. Deterministic; never throws on benign traces (an empty or
/// all-excluded trace returns the base profile uncalibrated).
CpuCalibration calibrate_cpu(const KernelTrace& trace,
                             const DeviceProfile& base);

}  // namespace ndft::runtime
