// Quickstart: simulate one LR-TDDFT iteration on all four machines and
// print the Fig. 7-style comparison for a small silicon system.
//
//   ./quickstart [atoms]        (default Si_64; must be a multiple of 8)

#include <cstdio>
#include <cstdlib>

#include "common/str_util.hpp"
#include "core/ndft_system.hpp"

using namespace ndft;

int main(int argc, char** argv) {
  std::size_t atoms = 64;
  if (argc > 1) {
    atoms = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  }

  // 1. Build the framework with the paper's Table III configuration.
  const core::NdftSystem system;

  // 2. Construct the LR-TDDFT workload for an Si_n supercell.
  const dft::Workload workload = system.workload_for(atoms);
  std::printf("Workload Si_%zu: %zu pairs, %zu grid points, %zu plane "
              "waves, %.1f GFLOP, %.1f GB of DRAM traffic\n\n",
              atoms, workload.dims.pairs, workload.dims.grid_points,
              workload.dims.basis_size,
              static_cast<double>(workload.total_flops()) / 1e9,
              static_cast<double>(workload.total_dram_bytes()) / 1e9);

  // 3. Inspect the schedule NDFT's cost-aware offloader chooses.
  const runtime::ExecutionPlan plan = system.plan(workload);
  std::printf("NDFT schedule (function granularity, %u crossings, est. "
              "overhead %s):\n",
              plan.crossings, format_time(plan.est_overhead_ps).c_str());
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    std::printf("  %-22s -> %s\n", workload.kernels[i].name.c_str(),
                to_string(plan.placements[i].device));
  }
  std::printf("\n");

  // 4. Simulate the iteration on each machine.
  for (const core::ExecMode mode :
       {core::ExecMode::kCpuBaseline, core::ExecMode::kGpuBaseline,
        core::ExecMode::kNdft}) {
    const core::RunReport report = system.run(workload, mode);
    std::printf("%s", report.render().c_str());
    std::printf("\n");
  }

  // 5. Headline speedups.
  const core::RunReport cpu =
      system.run(workload, core::ExecMode::kCpuBaseline);
  const core::RunReport gpu =
      system.run(workload, core::ExecMode::kGpuBaseline);
  const core::RunReport ndft = system.run(workload, core::ExecMode::kNdft);
  std::printf("NDFT speedup: %s vs CPU, %s vs GPU\n",
              format_speedup(core::speedup(cpu, ndft)).c_str(),
              format_speedup(core::speedup(gpu, ndft)).c_str());
  return 0;
}
