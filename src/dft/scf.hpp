#pragma once
// Self-consistent-field DFT ground state on the plane-wave basis.
//
// LR-TDDFT (the paper's workload) sits on a converged Kohn-Sham ground
// state; this module provides one. Unlike the empirical pseudopotential
// path (epm.hpp), whose fitted potential already contains the screening,
// the SCF uses a *bare* Ashcroft empty-core ionic pseudopotential
// (v(q) = -4 pi Z_v cos(q r_c) / q^2) and computes the screening --
// Hartree and LDA exchange-correlation -- self-consistently:
//
//   n(r)   = 2 sum_v |psi_v(r)|^2
//   V_H(G) = 4 pi n(G) / |G|^2          (FFT Poisson solve)
//   V_xc   = LDA: Slater exchange + Perdew-Zunger '81 correlation
//   H      = -1/2 nabla^2 + V_ion + V_H + V_xc   (dense, G-space)
//
// iterated with linear density mixing until the density residual drops
// below tolerance. Each SCF iteration exercises the same kernel families
// as the LR-TDDFT pipeline (FFT, pointwise products, SYEVD).

#include <vector>

#include "dft/basis.hpp"
#include "dft/epm.hpp"
#include "dft/fft.hpp"

namespace ndft::dft {

/// Density-mixing scheme for the SCF fixed point.
enum class MixingScheme {
  kLinear,    ///< n <- n + beta (f(n) - n)
  kAnderson,  ///< two-point Anderson acceleration on the residual
};

/// SCF controls.
struct ScfConfig {
  unsigned max_iterations = 60;
  double mixing = 0.35;         ///< linear mixing factor (beta)
  MixingScheme scheme = MixingScheme::kLinear;
  double tolerance = 1e-6;      ///< RMS density residual (electrons/Bohr^3)
  std::size_t bands = 0;        ///< eigenpairs kept (0 = valence + 8)
  double valence_charge = 4.0;  ///< Z_v of the Ashcroft ionic potential
  double core_radius_bohr = 1.12;  ///< empty-core radius (silicon)
};

/// One SCF iteration's bookkeeping.
struct ScfStep {
  unsigned iteration = 0;
  double density_residual = 0.0;  ///< RMS change of n(r)
  double total_energy_ha = 0.0;   ///< Kohn-Sham total energy estimate
  double gap_ev = 0.0;
};

/// Converged ground state plus the SCF history.
struct ScfResult {
  GroundState state;                ///< orbitals/energies at convergence
  std::vector<double> density;      ///< n(r) on the FFT grid
  std::vector<ScfStep> history;     ///< one entry per iteration
  bool converged = false;

  /// Electrons obtained by integrating the density over the cell.
  double electron_count(const PlaneWaveBasis& basis) const;
};

/// Ashcroft empty-core ionic potential matrix element between two basis
/// vectors (summed over the crystal's atoms; G = 0 dropped -- it cancels
/// against the Hartree background).
double ashcroft_potential(const Crystal& crystal, const GVector& g,
                          const GVector& gp, double valence_charge,
                          double core_radius_bohr);

/// Same matrix element from the Cartesian difference vector dG = G - G'.
/// The element depends only on this difference, which is what lets the
/// SCF tabulate the whole V_ion matrix over the distinct differences
/// once per geometry instead of evaluating form factor and structure
/// factor (cos() per atom) for all O(n_g^2) pairs.
double ashcroft_potential(const Crystal& crystal, const Vec3& dg,
                          double valence_charge, double core_radius_bohr);

/// LDA exchange-correlation potential (Slater exchange + PZ81
/// correlation) at density `n` (clamped away from zero internally).
double lda_vxc(double n);

/// LDA exchange-correlation energy density epsilon_xc(n) (per electron).
double lda_exc(double n);

/// Runs the SCF loop. Throws NdftError on invalid configuration; returns
/// with `converged == false` if max_iterations is exhausted (callers
/// decide whether that is fatal).
ScfResult solve_scf(const PlaneWaveBasis& basis,
                    const ScfConfig& config = {});

}  // namespace ndft::dft
