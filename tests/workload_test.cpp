// Tests for the analytic workload model: system dimensions, kernel
// descriptors, cross-validation against the instrumented functional
// kernels, and the virtual-MPI alltoall.

#include <gtest/gtest.h>

#include <cmath>

#include "dft/basis.hpp"
#include "dft/epm.hpp"
#include "dft/fft.hpp"
#include "dft/lattice.hpp"
#include "dft/lrtddft.hpp"
#include "dft/parallel.hpp"
#include "dft/workload.hpp"

namespace ndft::dft {
namespace {

TEST(SystemDimsTest, PaperSizesScaleCorrectly) {
  const SystemDims small = SystemDims::silicon(64);
  const SystemDims large = SystemDims::silicon(1024);
  EXPECT_EQ(small.valence_bands, 128u);
  EXPECT_EQ(large.valence_bands, 2048u);
  // Grid and basis scale linearly with atoms at fixed cutoff.
  EXPECT_NEAR(static_cast<double>(large.grid_points) /
                  static_cast<double>(small.grid_points),
              16.0, 0.5);
  EXPECT_NEAR(static_cast<double>(large.basis_size) /
                  static_cast<double>(small.basis_size),
              16.0, 0.5);
}

TEST(SystemDimsTest, WindowsSaturate) {
  const SystemDims tiny = SystemDims::silicon(16);
  EXPECT_EQ(tiny.valence_window, 32u);
  EXPECT_EQ(tiny.conduction_window, 8u);
  const SystemDims big = SystemDims::silicon(2048);
  EXPECT_EQ(big.valence_window, 64u);
  EXPECT_EQ(big.conduction_window, 16u);
  EXPECT_EQ(big.subspace, 2600u);  // capped
  const SystemDims s64 = SystemDims::silicon(64);
  EXPECT_EQ(s64.subspace, 34u * 64);
}

TEST(SystemDimsTest, BasisDensityMatchesRealEnumeration) {
  // The closed-form N_G must match the actual G-vector count of the
  // constructed basis to within a few percent.
  const Crystal crystal = Crystal::silicon_supercell(16);
  const double ecut = 2.25;
  const PlaneWaveBasis basis(crystal, ecut);
  const SystemDims dims = SystemDims::silicon(16, ecut);
  const double ratio = static_cast<double>(dims.basis_size) /
                       static_cast<double>(basis.size());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
}

TEST(SystemDimsTest, GridDensityMatchesRealFftGrid) {
  const Crystal crystal = Crystal::silicon_supercell(16);
  const double ecut = 2.25;
  const PlaneWaveBasis basis(crystal, ecut);
  const SystemDims dims = SystemDims::silicon(16, ecut);
  const double ratio = static_cast<double>(dims.grid_points) /
                       static_cast<double>(basis.fft_size());
  // The real grid is rounded up to friendly sizes, so it is a bit larger.
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 1.3);
}

TEST(SystemDimsTest, RejectsBadAtomCounts) {
  EXPECT_THROW(SystemDims::silicon(10), NdftError);
  EXPECT_THROW(SystemDims::silicon(0), NdftError);
}

TEST(WorkloadTest, IterationHasPipelineShape) {
  const Workload w =
      Workload::lrtddft_iteration(SystemDims::silicon(64));
  ASSERT_EQ(w.kernels.size(), 8u);
  EXPECT_EQ(w.kernels[0].cls, KernelClass::kFaceSplit);
  EXPECT_EQ(w.kernels[1].cls, KernelClass::kAlltoall);
  EXPECT_EQ(w.kernels[2].cls, KernelClass::kFft);
  EXPECT_EQ(w.kernels[3].cls, KernelClass::kAlltoall);
  EXPECT_EQ(w.kernels[4].cls, KernelClass::kGemm);
  EXPECT_EQ(w.kernels[5].cls, KernelClass::kAlltoall);
  EXPECT_EQ(w.kernels[6].cls, KernelClass::kPseudopotential);
  EXPECT_EQ(w.kernels[7].cls, KernelClass::kSyevd);
}

TEST(WorkloadTest, EveryKernelHasConsistentCosts) {
  for (const std::size_t atoms : {16, 64, 256, 1024}) {
    const Workload w =
        Workload::lrtddft_iteration(SystemDims::silicon(atoms));
    for (const KernelWork& k : w.kernels) {
      EXPECT_GT(k.l1_bytes, 0u) << k.name;
      EXPECT_GT(k.dram_bytes, 0u) << k.name;
      EXPECT_GE(k.l1_bytes, k.dram_bytes) << k.name;
      EXPECT_GT(k.input_bytes, 0u) << k.name;
      EXPECT_GT(k.output_bytes, 0u) << k.name;
      if (k.cls != KernelClass::kAlltoall) {
        EXPECT_GT(k.flops, 0u) << k.name;
      } else {
        EXPECT_GT(k.comm_volume, 0u) << k.name;
      }
    }
  }
}

TEST(WorkloadTest, ArithmeticIntensitiesMatchRooflineStory) {
  const Workload w =
      Workload::lrtddft_iteration(SystemDims::silicon(1024));
  for (const KernelWork& k : w.kernels) {
    switch (k.cls) {
      case KernelClass::kFft:
        EXPECT_LT(k.arithmetic_intensity(), 2.0);
        break;
      case KernelClass::kFaceSplit:
        EXPECT_LT(k.arithmetic_intensity(), 0.5);
        break;
      case KernelClass::kGemm:
        EXPECT_GT(k.arithmetic_intensity(), 20.0);
        break;
      default:
        break;
    }
  }
}

TEST(WorkloadTest, SyevdIntensityGrowsWithSystem) {
  const Workload small =
      Workload::lrtddft_iteration(SystemDims::silicon(64));
  const Workload large =
      Workload::lrtddft_iteration(SystemDims::silicon(1024));
  double ai_small = 0.0;
  double ai_large = 0.0;
  for (const KernelWork& k : small.kernels) {
    if (k.cls == KernelClass::kSyevd) ai_small = k.arithmetic_intensity();
  }
  for (const KernelWork& k : large.kernels) {
    if (k.cls == KernelClass::kSyevd) ai_large = k.arithmetic_intensity();
  }
  EXPECT_GT(ai_large, ai_small);  // the Fig. 4 memory->compute transition
}

TEST(WorkloadTest, MemoryTrafficScalesLinearlyPastSaturation) {
  // Once the band windows saturate (>= Si_32), streaming kernels scale
  // linearly with the grid, i.e. with atoms.
  const Workload a = Workload::lrtddft_iteration(SystemDims::silicon(256));
  const Workload b = Workload::lrtddft_iteration(SystemDims::silicon(1024));
  const double ratio = static_cast<double>(b.kernels[0].l1_bytes) /
                       static_cast<double>(a.kernels[0].l1_bytes);
  EXPECT_NEAR(ratio, 4.0, 0.3);
}

TEST(WorkloadTest, FftCostMatchesFunctionalKernel) {
  // Validate the analytic FFT descriptor against the instrumented
  // functional 3D FFT: flops per grid point must agree within 2x
  // (the descriptor uses the idealised 5 N log N form).
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  Grid3 grid(basis.fft_dims()[0], basis.fft_dims()[1], basis.fft_dims()[2]);
  OpCount measured;
  fft3d(grid, FftDirection::kForward, &measured);
  const double n = static_cast<double>(grid.size());
  const double analytic_per_point = 5.0 * std::log2(n);
  const double measured_per_point = static_cast<double>(measured.flops) / n;
  EXPECT_GT(measured_per_point, analytic_per_point * 0.5);
  EXPECT_LT(measured_per_point, analytic_per_point * 2.0);
}

TEST(WorkloadTest, FaceSplitBytesMatchFunctionalCounts) {
  // The functional pipeline tallies ~112 B per pair-point across the
  // face-splitting + kernel-application stages; the descriptor assumes
  // the same constant.
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  const GroundState ground = solve_epm(basis, 20);
  LrTddftConfig config;
  config.valence_window = 2;
  config.conduction_window = 2;
  const LrTddftResult result = solve_lrtddft(basis, ground, config);
  const OpCount& face = result.counts.at(KernelClass::kFaceSplit);
  const double per_point =
      static_cast<double>(face.bytes) /
      (static_cast<double>(result.pair_count) *
       static_cast<double>(basis.fft_size()));
  EXPECT_GT(per_point, 50.0);
  EXPECT_LT(per_point, 200.0);
}

TEST(WorkloadTest, PseudoFootprintEntersDescriptor) {
  const Workload w =
      Workload::lrtddft_iteration(SystemDims::silicon(64));
  EXPECT_EQ(w.pseudo_copy_bytes(),
            w.pseudo_sizing.bytes_total(64));
  for (const KernelWork& k : w.kernels) {
    if (k.cls == KernelClass::kPseudopotential) {
      EXPECT_GE(k.dram_bytes, w.pseudo_copy_bytes());
    }
  }
}

TEST(WorkloadTest, TotalsAggregate) {
  const Workload w = Workload::lrtddft_iteration(SystemDims::silicon(32));
  Flops flops = 0;
  Bytes bytes = 0;
  for (const KernelWork& k : w.kernels) {
    flops += k.flops;
    bytes += k.dram_bytes;
  }
  EXPECT_EQ(w.total_flops(), flops);
  EXPECT_EQ(w.total_dram_bytes(), bytes);
}

// ------------------------------------------------------------ virtual MPI

TEST(VirtualCommTest, AlltoallMovesChunksCorrectly) {
  VirtualComm comm(4);
  std::vector<std::vector<int>> send(4, std::vector<int>(8));
  for (unsigned p = 0; p < 4; ++p) {
    for (unsigned i = 0; i < 8; ++i) {
      send[p][i] = static_cast<int>(p * 100 + i);
    }
  }
  const auto recv = comm.alltoall(send);
  // Chunk q of rank p lands at chunk p of rank q.
  for (unsigned p = 0; p < 4; ++p) {
    for (unsigned q = 0; q < 4; ++q) {
      for (unsigned i = 0; i < 2; ++i) {
        EXPECT_EQ(recv[q][p * 2 + i], static_cast<int>(p * 100 + q * 2 + i));
      }
    }
  }
}

TEST(VirtualCommTest, TrafficAccounting) {
  VirtualComm comm(4);
  std::vector<std::vector<double>> send(4, std::vector<double>(16, 1.0));
  comm.alltoall(send);
  // Each rank sends 3/4 of its buffer off-rank: 4 * 12 doubles.
  EXPECT_EQ(comm.off_node_bytes(), 4u * 12 * sizeof(double));
  EXPECT_EQ(comm.local_bytes(), 4u * 4 * sizeof(double));
}

TEST(VirtualCommTest, AlltoallIsInvolutionForSymmetricLayout) {
  VirtualComm comm(3);
  std::vector<std::vector<int>> send(3, std::vector<int>(9));
  int counter = 0;
  for (auto& buffer : send) {
    for (int& value : buffer) value = counter++;
  }
  const auto once = comm.alltoall(send);
  const auto twice = comm.alltoall(once);
  EXPECT_EQ(twice, send);  // alltoall of alltoall restores the layout
}

TEST(VirtualCommTest, RejectsRaggedBuffers) {
  VirtualComm comm(2);
  std::vector<std::vector<int>> bad{std::vector<int>(4),
                                    std::vector<int>(6)};
  EXPECT_THROW(comm.alltoall(bad), NdftError);
  std::vector<std::vector<int>> odd(2, std::vector<int>(3));
  EXPECT_THROW(comm.alltoall(odd), NdftError);
}

TEST(BlockDistributionTest, CoversAllRowsOnce) {
  BlockDistribution dist{103, 8};
  std::size_t total = 0;
  for (unsigned r = 0; r < 8; ++r) {
    EXPECT_EQ(dist.row_end(r) - dist.row_begin(r), dist.rows_of(r));
    total += dist.rows_of(r);
    if (r > 0) {
      EXPECT_EQ(dist.row_begin(r), dist.row_end(r - 1));
    }
  }
  EXPECT_EQ(total, 103u);
  // Balanced to within one row.
  EXPECT_LE(dist.rows_of(0) - dist.rows_of(7), 1u);
}

}  // namespace
}  // namespace ndft::dft
