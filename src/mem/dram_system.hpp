#pragma once
// A multi-channel DRAM system: routes line requests to per-channel
// controllers through the address map. This is the MemoryPort that cache
// hierarchies and NDP cores sit on top of.

#include <memory>
#include <string>
#include <vector>

#include "mem/address_map.hpp"
#include "mem/dram_channel.hpp"
#include "mem/mem_request.hpp"
#include "sim/sim_object.hpp"

namespace ndft::mem {

/// Configuration of a DRAM system (one memory domain).
struct DramConfig {
  DramTiming timing;
  DramGeometry geometry;
  unsigned channels = 4;
  Bytes line_bytes = 64;
  PagePolicy page_policy = PagePolicy::kOpen;
  /// Fixed latency added to every access before it reaches the controller
  /// (models the on-/off-chip interconnect between the LLC and DRAM; the
  /// NDP cores use ~0 here, the CPU pays SerDes + board traversal).
  TimePs access_latency_ps = 0;
  /// Per-channel controller queue depth: the credit pool of the channel's
  /// ingress connection. A credit is held from acceptance until the data
  /// transfer retires, so bursts that out-run the channel stage in the
  /// DramSystem and are accounted as back-pressure stalls. The default
  /// exceeds any in-flight population today's requesters generate
  /// (transaction-level drains schedule whole bursts ahead of time), so
  /// the bound only bites when a machine config tightens it.
  std::size_t queue_depth = 4096;

  /// Peak aggregate bandwidth in decimal GB/s.
  double peak_gbps() const noexcept {
    return timing.peak_gbps() * channels;
  }

  /// DDR4 system for the Xeon-like CPU baseline (4 channels, 64 GiB).
  static DramConfig xeon_ddr4();

  /// One HBM2 stack's DRAM (8 channels, 4 GiB) for NDP-local access.
  static DramConfig hbm2_stack();
};

/// Multi-channel DRAM with a shared address map.
class DramSystem : public sim::SimObject, public MemoryPort {
 public:
  DramSystem(std::string name, sim::EventQueue& queue,
             const DramConfig& config);

  /// Routes the request to its channel; splits nothing (callers send
  /// line-granularity requests).
  void access(MemRequest req) override;

  /// Address map used by this system.
  const AddressMap& address_map() const noexcept { return map_; }

  /// Configuration echo.
  const DramConfig& config() const noexcept { return config_; }

  /// Total bytes transferred across all channels.
  Bytes bytes_transferred() const noexcept;

  /// Total energy across channels (nJ) under the given parameters.
  double energy_nj(const DramEnergy& energy) const;

  /// Dynamic (command-only) energy across channels (nJ).
  double dynamic_energy_nj(const DramEnergy& energy) const;

  /// Aggregates per-channel statistics into `out` under `prefix`.
  void collect_stats(const std::string& prefix, sim::StatSet& out) const;

 private:
  DramConfig config_;
  AddressMap map_;
  std::vector<std::unique_ptr<DramChannel>> channels_;
  // Per-channel ingress: an OutputPort on the channel's bounded
  // connection, fronted by a staging sender so access() never drops or
  // blocks — overload beyond the controller queue depth shows up as
  // backpressure_stall stats on the channel instead.
  std::vector<std::unique_ptr<sim::OutputPort<ChannelRequest>>> ports_;
  std::vector<std::unique_ptr<sim::CreditedSender<ChannelRequest>>> senders_;
};

}  // namespace ndft::mem
