#include "api/shard.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "api/request_json.hpp"
#include "common/error.hpp"
#include "common/str_util.hpp"
#include "common/thread_pool.hpp"
#include "dft/lattice.hpp"
#include "net/client.hpp"

namespace ndft::api {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Same conversion constant the Engine's band executor uses; the merged
// summary must replay its arithmetic digit for digit.
constexpr double kEvPerHa = 27.211386;

const char* sampling_payload_name(BandStructureJob::Sampling sampling) {
  switch (sampling) {
    case BandStructureJob::Sampling::kPath: return "path";
    case BandStructureJob::Sampling::kMonkhorstPack: return "monkhorst_pack";
    case BandStructureJob::Sampling::kExplicit: return "explicit";
  }
  return "?";
}

/// Recomputes the gap summary over the gathered k-points exactly as
/// dft::find_gap does over a single solve: weighted band-energy terms
/// accumulate in canonical k-order and the total normalizes ONCE by the
/// full weight_sum. Merging per-shard summaries instead would divide each
/// partial sum by its shard's weight before re-averaging — a different
/// (and double-normalized) float sequence that breaks bitwise equality
/// with the unsharded run.
void merge_gap_summary(const BandStructureJob& job,
                       BandStructurePayload& merged) {
  const std::size_t valence = job.valence_bands;
  merged.vbm_ha = -1e18;
  merged.cbm_ha = 1e18;
  merged.vbm_label.clear();
  merged.cbm_label.clear();
  merged.weight_sum = 0.0;
  double weighted_band_energy = 0.0;
  for (const BandsAtKPayload& at_k : merged.path) {
    const double vbm = at_k.energies_ha[valence - 1];
    const double cbm = at_k.energies_ha[valence];
    if (vbm > merged.vbm_ha) {
      merged.vbm_ha = vbm;
      merged.vbm_label = at_k.label;
    }
    if (cbm < merged.cbm_ha) {
      merged.cbm_ha = cbm;
      merged.cbm_label = at_k.label;
    }
    double occupied = 0.0;
    for (std::size_t v = 0; v < valence; ++v) {
      occupied += at_k.energies_ha[v];
    }
    weighted_band_energy += at_k.weight * 2.0 * occupied;
    merged.weight_sum += at_k.weight;
  }
  merged.band_energy_ha = merged.weight_sum > 0.0
                              ? weighted_band_energy / merged.weight_sum
                              : 0.0;
  merged.indirect_gap_ev = (merged.cbm_ha - merged.vbm_ha) * kEvPerHa;
  // Direct gap at the zone centre, scanning the gathered points in the
  // same canonical order the Engine scans its solved structure.
  merged.direct_gap_gamma_ev = 0.0;
  for (const BandsAtKPayload& at_k : merged.path) {
    const double norm2 = at_k.k[0] * at_k.k[0] + at_k.k[1] * at_k.k[1] +
                         at_k.k[2] * at_k.k[2];
    const bool is_gamma = at_k.label == "Gamma" || norm2 < 1e-20;
    if (is_gamma && at_k.energies_ha.size() > valence) {
      merged.direct_gap_gamma_ev =
          (at_k.energies_ha[valence] - at_k.energies_ha[valence - 1]) *
          kEvPerHa;
      break;
    }
  }
}

}  // namespace

// ------------------------------------------------------------ LocalBackend

LocalBackend::LocalBackend(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

JobResult LocalBackend::execute(const JobRequest& request) {
  return engine_.run(request);
}

// ------------------------------------------------------------- HttpBackend

HttpBackend::HttpBackend(Config config) : config_(std::move(config)) {
  name_ = strformat("http://%s:%u", config_.host.c_str(),
                    static_cast<unsigned>(config_.port));
  client_ = std::make_unique<net::HttpClient>(config_.host, config_.port,
                                              config_.timeout_ms);
  if (!config_.bearer.empty()) client_->set_bearer(config_.bearer);
}

HttpBackend::~HttpBackend() = default;

JobResult HttpBackend::execute(const JobRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string body = job_request_to_json(request).dump();
  const std::string wait = strformat("%g", config_.poll_wait_ms);
  const net::HttpResponse posted =
      client_->post("/v1/jobs?wait_ms=" + wait, body);
  if (posted.status == 400) {
    // The request itself is at fault: rerouting it to another backend
    // would only reproduce the rejection, so surface it as a structured
    // invalid result instead of throwing.
    JobResult result;
    result.status = JobStatus::kInvalid;
    result.error = ErrorKind::kInvalidRequest;
    result.engine.kind = job_kind(request);
    result.error_message = "request rejected by backend";
    try {
      const Json parsed = Json::parse(posted.body);
      if (parsed.has("error")) {
        const Json& error = parsed.at("error");
        if (error.has("message")) {
          result.error_message = error.at("message").as_string();
        }
        if (error.has("details")) {
          const Json& details = error.at("details");
          for (std::size_t i = 0; i < details.size(); ++i) {
            result.error_details.push_back(details[i].as_string());
          }
        }
      }
    } catch (const NdftError&) {
      // Keep the generic message; the 400 itself is the signal.
    }
    return result;
  }
  if (posted.status == 200) {
    // The long poll covered the whole run.
    return JobResult::from_json(Json::parse(posted.body));
  }
  if (posted.status != 202) {
    // 401/429/503/...: the backend (or our standing with it) is the
    // problem — throw so the sharder retries or reroutes.
    throw NdftError(strformat("backend %s refused job: HTTP %d",
                              name_.c_str(), posted.status));
  }
  const std::uint64_t id = Json::parse(posted.body).at("id").as_uint();
  // Poll to the terminal result. GET /v1/jobs/{id} answers 200 for BOTH
  // the {"id","status"} progress stub and the finished document — the
  // status code cannot distinguish them (mistaking the stub for a result
  // was exactly the long-poll bug this layer's tests pin down). The full
  // result alone carries the "schema" member, so gate on that.
  const bool bounded = config_.result_deadline_ms > 0.0;
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             bounded ? config_.result_deadline_ms : 0.0));
  const std::string target =
      "/v1/jobs/" + std::to_string(id) + "?wait_ms=" + wait;
  for (;;) {
    const net::HttpResponse polled = client_->get(target);
    if (polled.status != 200) {
      throw NdftError(strformat("backend %s lost job %llu: HTTP %d",
                                name_.c_str(),
                                static_cast<unsigned long long>(id),
                                polled.status));
    }
    const Json parsed = Json::parse(polled.body);
    if (parsed.has("schema")) return JobResult::from_json(parsed);
    if (bounded && Clock::now() >= give_up) {
      throw NdftError(strformat(
          "backend %s: job %llu still pending after %g ms", name_.c_str(),
          static_cast<unsigned long long>(id), config_.result_deadline_ms));
    }
  }
}

// ----------------------------------------------------------- ShardedEngine

/// Cancellation/deadline view of one top-level run: an optional external
/// token (cancel + its own deadline) combined with the request's
/// deadline_ms measured from execution start. Checked between shard
/// dispatches — a sub-job already running on a backend finishes on its
/// own (its deadline_ms budget bounds it).
struct ShardedEngine::RunGuard {
  const CancelToken* external = nullptr;
  Clock::time_point deadline{};
  bool has_deadline = false;

  bool cancelled() const {
    return external != nullptr && external->cancel_requested();
  }
  bool expired() const {
    if (external != nullptr && external->deadline_exceeded()) return true;
    return has_deadline && Clock::now() >= deadline;
  }
};

/// Gather state of one scatter: per-shard results (slots stay disengaged
/// until a worker stores into them) plus the fan-out tallies.
struct ShardedEngine::ScatterOutcome {
  std::vector<std::optional<JobResult>> results;
  std::uint64_t rerouted = 0;
  std::uint64_t failed_backends = 0;
  std::uint64_t fallback_shards = 0;
};

ShardedEngine::ShardedEngine(std::vector<std::shared_ptr<Backend>> backends,
                             ShardedEngineConfig config)
    : backends_(std::move(backends)), config_(std::move(config)) {
  NDFT_REQUIRE(!backends_.empty(),
               "a ShardedEngine needs at least one backend");
  for (const std::shared_ptr<Backend>& backend : backends_) {
    NDFT_REQUIRE(backend != nullptr, "null backend");
  }
  // The fallback engine only ever services synchronous run() calls from
  // the gather path; dispatcher threads would just idle.
  config_.local.dispatch_threads = 0;
}

ShardedEngine::~ShardedEngine() = default;

Engine& ShardedEngine::fallback_engine() {
  std::lock_guard<std::mutex> lock(fallback_mutex_);
  if (fallback_ == nullptr) {
    fallback_ = std::make_unique<Engine>(config_.local);
  }
  return *fallback_;
}

JobResult ShardedEngine::run(const JobRequest& request) {
  RunGuard guard;
  return run_impl(request, guard);
}

JobResult ShardedEngine::run(const JobRequest& request,
                             const CancelToken& cancel) {
  RunGuard guard;
  guard.external = &cancel;
  return run_impl(request, guard);
}

std::vector<JobResult> ShardedEngine::run_batch(
    const std::vector<JobRequest>& requests) {
  RunGuard guard;
  return run_batch_impl(requests, guard);
}

std::vector<JobResult> ShardedEngine::run_batch(
    const std::vector<JobRequest>& requests, const CancelToken& cancel) {
  RunGuard guard;
  guard.external = &cancel;
  return run_batch_impl(requests, guard);
}

void ShardedEngine::execute_scatter(const std::vector<JobRequest>& subs,
                                    const RunGuard& guard,
                                    ScatterOutcome& outcome) {
  outcome.results.assign(subs.size(), std::nullopt);

  std::mutex mutex;
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < subs.size(); ++i) pending.push_back(i);

  const unsigned attempts = std::max(1u, config_.backend_attempts);
  const auto worker = [&](std::size_t backend_index) {
    Backend& backend = *backends_[backend_index];
    for (;;) {
      if (guard.cancelled() || guard.expired()) return;
      std::size_t shard = 0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (pending.empty()) return;
        shard = pending.front();
        pending.pop_front();
      }
      bool done = false;
      for (unsigned attempt = 1; attempt <= attempts && !done; ++attempt) {
        try {
          JobResult result = backend.execute(subs[shard]);
          std::lock_guard<std::mutex> lock(mutex);
          outcome.results[shard] = std::move(result);
          done = true;
        } catch (const std::exception&) {
          // Backend-level failure (transport, dead engine). Transient
          // blips get an in-place retry after a deterministic pause...
          if (attempt < attempts && config_.retry_backoff_ms > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    config_.retry_backoff_ms));
          }
        }
      }
      if (done) {
        shards_exec_.fetch_add(1);
        continue;
      }
      // ...and a persistent failure marks this backend down for the run:
      // the shard goes back to the FRONT of the queue (preserving the
      // canonical order of what's left) for a surviving worker to absorb.
      {
        std::lock_guard<std::mutex> lock(mutex);
        pending.push_front(shard);
        outcome.rerouted += 1;
        outcome.failed_backends += 1;
      }
      rerouted_.fetch_add(1);
      backends_failed_.fetch_add(1);
      return;
    }
  };

  const std::size_t workers = std::min(backends_.size(), subs.size());
  if (workers <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t b = 0; b < workers; ++b) {
      threads.emplace_back(worker, b);
    }
    for (std::thread& thread : threads) thread.join();
  }

  // Whatever is left had no backend to run on (all marked down). Unless
  // the run was cancelled or timed out, degrade to local execution
  // rather than failing work we can still do.
  if (config_.allow_local_fallback) {
    for (std::size_t i = 0; i < subs.size(); ++i) {
      if (outcome.results[i].has_value()) continue;
      if (guard.cancelled() || guard.expired()) break;
      JobResult result = fallback_engine().run(subs[i]);
      result.degraded.push_back("shard:local_fallback");
      outcome.results[i] = std::move(result);
      outcome.fallback_shards += 1;
      local_fallback_.fetch_add(1);
      shards_exec_.fetch_add(1);
    }
  }
}

JobResult ShardedEngine::execute_single(const JobRequest& request,
                                        const RunGuard& guard,
                                        ShardInfo& info) {
  const unsigned attempts = std::max(1u, config_.backend_attempts);
  const std::size_t count = backends_.size();
  const std::size_t start =
      static_cast<std::size_t>(next_backend_.fetch_add(1)) % count;
  for (std::size_t offset = 0; offset < count; ++offset) {
    if (guard.cancelled() || guard.expired()) break;
    Backend& backend = *backends_[(start + offset) % count];
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
      try {
        JobResult result = backend.execute(request);
        shards_exec_.fetch_add(1);
        return result;
      } catch (const std::exception&) {
        if (attempt < attempts && config_.retry_backoff_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  config_.retry_backoff_ms));
        }
      }
    }
    info.failed_backends += 1;
    backends_failed_.fetch_add(1);
    if (offset + 1 < count) {
      info.rerouted += 1;
      rerouted_.fetch_add(1);
    }
  }
  if (guard.cancelled()) {
    JobResult result;
    result.status = JobStatus::kCancelled;
    result.error = ErrorKind::kCancelled;
    result.error_message = "job cancelled while running";
    result.engine.kind = job_kind(request);
    return result;
  }
  if (guard.expired()) {
    JobResult result;
    result.status = JobStatus::kDeadlineExceeded;
    result.error = ErrorKind::kDeadlineExceeded;
    result.error_message = "job deadline exceeded";
    result.engine.kind = job_kind(request);
    return result;
  }
  if (config_.allow_local_fallback) {
    JobResult result = fallback_engine().run(request);
    local_fallback_.fetch_add(1);
    shards_exec_.fetch_add(1);
    result.degraded.push_back("shard:local_fallback");
    return result;
  }
  JobResult result;
  result.status = JobStatus::kFailed;
  result.error = ErrorKind::kInternal;
  result.error_message = "all backends failed";
  result.engine.kind = job_kind(request);
  return result;
}

JobResult ShardedEngine::run_impl(const JobRequest& request,
                                  const RunGuard& base_guard) {
  const Clock::time_point start = Clock::now();
  jobs_run_.fetch_add(1);

  RunGuard guard = base_guard;
  const double deadline_ms = job_deadline_ms(request);
  if (deadline_ms > 0.0) {
    guard.has_deadline = true;
    guard.deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms));
  }

  const auto finish = [&](JobResult result) {
    result.engine.job_id = next_job_id_.fetch_add(1);
    result.engine.pool_threads = ThreadPool::instance().threads();
    result.engine.dispatch_threads = backends_.size();
    result.timings.queue_ms = 0.0;
    result.timings.total_ms = ms_between(start, Clock::now());
    return result;
  };

  // Mirror the Engine: refuse invalid requests up front, before any
  // backend sees a sub-job carved from them.
  std::vector<std::string> errors = validate(request);
  if (!errors.empty()) {
    JobResult result;
    result.status = JobStatus::kInvalid;
    result.error = ErrorKind::kInvalidRequest;
    result.error_message = "request failed validation";
    result.error_details = std::move(errors);
    result.engine.kind = job_kind(request);
    return finish(std::move(result));
  }

  // Decide the split. Only an untraced band-structure job is splittable
  // (a trace must keep whole-run program order); everything else runs
  // whole on one backend.
  const auto* band = std::get_if<BandStructureJob>(&request);
  std::vector<dft::KPoint> points;
  std::size_t shard_count = 1;
  if (band != nullptr && !band->record_trace) {
    const dft::Crystal crystal =
        band->atoms == 0 ? dft::silicon_primitive()
                         : dft::Crystal::silicon_supercell(band->atoms);
    points = band_job_kpoints(*band, crystal);
    const std::size_t by_backends =
        std::max<std::size_t>(1, backends_.size() *
                                     std::max<std::size_t>(
                                         1, config_.shards_per_backend));
    const std::size_t by_points =
        std::max<std::size_t>(1, points.size() /
                                     std::max<std::size_t>(
                                         1, config_.min_points_per_shard));
    shard_count = std::min({by_backends, by_points, points.size()});
  }

  if (band == nullptr || shard_count <= 1) {
    ShardInfo info;
    info.backends = backends_.size();
    info.shards = 1;
    JobResult result = execute_single(request, guard, info);
    result.shard = info;
    return finish(std::move(result));
  }

  // Scatter: contiguous chunks of the canonical (already folded) k-set,
  // expressed as explicit sub-jobs so they survive the wire verbatim.
  // Sub-jobs inherit the REMAINING budget, floored just above zero so an
  // already-expired deadline still reads as "a deadline" downstream
  // (deadline_ms == 0 means unlimited in the job schema).
  const double remaining_ms =
      deadline_ms > 0.0
          ? std::max(0.001, deadline_ms - ms_between(start, Clock::now()))
          : 0.0;
  std::vector<JobRequest> subs;
  subs.reserve(shard_count);
  const std::size_t base = points.size() / shard_count;
  const std::size_t extra = points.size() % shard_count;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t take = base + (s < extra ? 1 : 0);
    BandStructureJob sub = *band;
    sub.sampling = BandStructureJob::Sampling::kExplicit;
    sub.kpoints.clear();
    sub.kpoints.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      const dft::KPoint& kp = points[cursor + i];
      BandStructureJob::KPointSpec spec;
      spec.k[0] = kp.k.x;
      spec.k[1] = kp.k.y;
      spec.k[2] = kp.k.z;
      spec.weight = kp.weight;
      spec.label = kp.label;
      sub.kpoints.push_back(std::move(spec));
    }
    sub.deadline_ms = remaining_ms;
    cursor += take;
    subs.emplace_back(std::move(sub));
  }

  ScatterOutcome outcome;
  execute_scatter(subs, guard, outcome);

  ShardInfo info;
  info.backends = backends_.size();
  info.shards = shard_count;
  info.rerouted = outcome.rerouted;
  info.failed_backends = outcome.failed_backends;

  const auto terminal = [&](JobStatus status, ErrorKind kind,
                            const char* message) {
    JobResult result;
    result.status = status;
    result.error = kind;
    result.error_message = message;
    result.engine.kind = job_kind(request);
    result.shard = info;
    return finish(std::move(result));
  };

  for (const std::optional<JobResult>& slot : outcome.results) {
    if (!slot.has_value()) {
      if (guard.cancelled()) {
        return terminal(JobStatus::kCancelled, ErrorKind::kCancelled,
                        "job cancelled while running");
      }
      if (guard.expired()) {
        return terminal(JobStatus::kDeadlineExceeded,
                        ErrorKind::kDeadlineExceeded,
                        "job deadline exceeded");
      }
      return terminal(JobStatus::kFailed, ErrorKind::kInternal,
                      "all backends failed");
    }
  }

  // A sub-job that ran but did not succeed fails the whole job with the
  // FIRST failing shard's verdict (canonical order keeps this stable
  // across completion orders).
  for (const std::optional<JobResult>& slot : outcome.results) {
    const JobResult& sub = *slot;
    if (sub.status == JobStatus::kOk) continue;
    JobResult result;
    result.status = sub.status;
    result.error = sub.error;
    result.error_message = sub.error_message;
    result.error_details = sub.error_details;
    result.engine.kind = job_kind(request);
    result.shard = info;
    return finish(std::move(result));
  }

  // Gather: concatenate in canonical shard order, then recompute the
  // summary once over the whole k-set.
  JobResult result;
  result.status = JobStatus::kOk;
  result.engine.kind = job_kind(request);
  BandStructurePayload merged;
  for (std::size_t s = 0; s < outcome.results.size(); ++s) {
    const JobResult& sub = *outcome.results[s];
    NDFT_REQUIRE(sub.band_structure.has_value(),
                 "band sub-job returned no band payload");
    const BandStructurePayload& part = *sub.band_structure;
    if (s == 0) {
      merged.atoms = part.atoms;
      merged.basis_size = part.basis_size;
    }
    merged.path.insert(merged.path.end(), part.path.begin(),
                       part.path.end());
    result.timings.run_ms += sub.timings.run_ms;
    result.timings.linalg_ms += sub.timings.linalg_ms;
    result.timings.backoff_ms += sub.timings.backoff_ms;
    result.timings.reduce_ms += sub.timings.reduce_ms;
    result.timings.tridiag_ms += sub.timings.tridiag_ms;
    result.timings.backtransform_ms += sub.timings.backtransform_ms;
    result.degraded.insert(result.degraded.end(), sub.degraded.begin(),
                           sub.degraded.end());
  }
  // The merged document reports the sampling the CALLER requested; the
  // sub-jobs' "explicit" form is a transport detail.
  merged.sampling = sampling_payload_name(band->sampling);
  merge_gap_summary(*band, merged);
  result.band_structure = std::move(merged);
  result.shard = info;
  return finish(std::move(result));
}

std::vector<JobResult> ShardedEngine::run_batch_impl(
    const std::vector<JobRequest>& requests, const RunGuard& guard) {
  jobs_run_.fetch_add(requests.size());
  ScatterOutcome outcome;
  execute_scatter(requests, guard, outcome);
  std::vector<JobResult> results;
  results.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    JobResult result;
    if (outcome.results[i].has_value()) {
      result = std::move(*outcome.results[i]);
    } else if (guard.cancelled()) {
      result.status = JobStatus::kCancelled;
      result.error = ErrorKind::kCancelled;
      result.error_message = "job cancelled while queued";
      result.engine.kind = job_kind(requests[i]);
    } else if (guard.expired()) {
      result.status = JobStatus::kDeadlineExceeded;
      result.error = ErrorKind::kDeadlineExceeded;
      result.error_message = "job deadline exceeded";
      result.engine.kind = job_kind(requests[i]);
    } else {
      result.status = JobStatus::kFailed;
      result.error = ErrorKind::kInternal;
      result.error_message = "all backends failed";
      result.engine.kind = job_kind(requests[i]);
    }
    ShardInfo info;
    info.backends = backends_.size();
    info.shards = requests.size();
    info.rerouted = outcome.rerouted;
    info.failed_backends = outcome.failed_backends;
    result.shard = info;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace ndft::api
