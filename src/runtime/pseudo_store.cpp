#include "runtime/pseudo_store.hpp"

#include "common/error.hpp"

namespace ndft::runtime {
namespace {

/// SPM staging area per stack (Table III: 256 KiB).
constexpr Bytes kSpmStagingBytes = 256 * 1024;

}  // namespace

PseudoFootprint PseudoStore::on_ndp(PseudoLayout layout,
                                    Bytes capacity) const {
  PseudoFootprint f;
  f.capacity = capacity;
  const Bytes copy = copy_bytes();
  const unsigned procs = processes_.ndp_processes;
  if (layout == PseudoLayout::kReplicated) {
    f.per_process = copy;
    f.total = static_cast<Bytes>(procs) * copy;
    return f;
  }
  // Shared blocks: one distributed copy + per-process index tables +
  // per-stack SPM staging.
  const Bytes indices = static_cast<Bytes>(workload_->dims.atoms) *
                        dft::PseudoSizing::index_bytes_per_atom();
  f.per_process = copy / procs + indices;
  f.total = copy + static_cast<Bytes>(procs) * indices +
            static_cast<Bytes>(processes_.stacks) * kSpmStagingBytes;
  return f;
}

PseudoFootprint PseudoStore::on_cpu(Bytes capacity) const {
  PseudoFootprint f;
  f.capacity = capacity;
  f.per_process = copy_bytes();
  f.total = static_cast<Bytes>(processes_.cpu_processes) * f.per_process;
  return f;
}

PseudoFootprint PseudoStore::on_ndft(Bytes capacity) const {
  PseudoFootprint f;
  f.capacity = capacity;
  const Bytes copy = copy_bytes();
  const Bytes indices = static_cast<Bytes>(workload_->dims.atoms) *
                        dft::PseudoSizing::index_bytes_per_atom();
  // CPU ranks of the hybrid machine keep classic replicas; the NDP side
  // holds one copy distributed across stacks, per-process index tables,
  // and the SPM staging areas.
  f.total = static_cast<Bytes>(processes_.cpu_processes) * copy + copy +
            static_cast<Bytes>(processes_.ndp_processes) * indices +
            static_cast<Bytes>(processes_.stacks) * kSpmStagingBytes;
  f.per_process = copy;  // the CPU ranks are the largest holders
  return f;
}

Bytes PseudoStore::sharing_traffic_bytes(bool hierarchical) const {
  const Bytes copy = copy_bytes();
  const unsigned stacks = processes_.stacks;
  NDFT_ASSERT(stacks > 0);
  // Each stack owns 1/stacks of the dataset and must see the rest once
  // per iteration.
  const Bytes remote_share = copy - copy / stacks;
  if (hierarchical) {
    return static_cast<Bytes>(stacks) * remote_share;
  }
  // Flat: every process fetches its own remote share.
  const unsigned procs_per_stack =
      (processes_.ndp_processes + stacks - 1) / stacks;
  return static_cast<Bytes>(stacks) * procs_per_stack * remote_share;
}

}  // namespace ndft::runtime
