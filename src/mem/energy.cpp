#include "mem/energy.hpp"

namespace ndft::mem {

DramEnergy DramEnergy::ddr4() {
  return DramEnergy{};  // defaults are the DDR4 channel numbers
}

DramEnergy DramEnergy::hbm2() {
  DramEnergy e;
  e.act_pre_nj = 1.2;
  e.read_nj = 1.1;
  e.write_nj = 1.2;
  e.refresh_nj = 60.0;
  e.background_mw = 40.0;
  return e;
}

double channel_energy_nj(const DramEnergy& energy, double acts,
                         double reads, double writes, double refreshes,
                         TimePs elapsed_ps) {
  const double dynamic = acts * energy.act_pre_nj +
                         reads * energy.read_nj +
                         writes * energy.write_nj +
                         refreshes * energy.refresh_nj;
  // mW * ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-6 nJ.
  const double background =
      energy.background_mw * static_cast<double>(elapsed_ps) * 1e-6;
  return dynamic + background;
}

}  // namespace ndft::mem
