#include "cache/cache.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace ndft::cache {

CacheConfig CacheConfig::l1(std::uint64_t freq_mhz) {
  CacheConfig c{};
  c.size_bytes = 32 * 1024;
  c.ways = 8;
  c.hit_latency_ps = 4 * (1000000 / freq_mhz);
  c.mshrs = 10;
  return c;
}

CacheConfig CacheConfig::l2(std::uint64_t freq_mhz) {
  CacheConfig c{};
  c.size_bytes = 256 * 1024;
  c.ways = 8;
  c.hit_latency_ps = 12 * (1000000 / freq_mhz);
  c.mshrs = 24;
  c.prefetch = true;
  // Deep streaming prefetch: keeps 8-line bursts in flight per stream so
  // the FR-FCFS controller can amortise row activations across streams.
  c.prefetch_degree = 8;
  return c;
}

CacheConfig CacheConfig::l3(std::uint64_t freq_mhz) {
  CacheConfig c{};
  c.size_bytes = 2 * 1024 * 1024;
  c.ways = 16;
  c.hit_latency_ps = 38 * (1000000 / freq_mhz);
  c.mshrs = 32;
  return c;
}

Cache::Cache(std::string name, sim::EventQueue& queue,
             const CacheConfig& config, mem::MemoryPort& next)
    : SimObject(std::move(name), queue), config_(config), next_(&next) {
  NDFT_REQUIRE(is_pow2(config.line_bytes), "line size must be a power of two");
  NDFT_REQUIRE(config.ways > 0, "cache needs at least one way");
  NDFT_REQUIRE(config.size_bytes % (config.line_bytes * config.ways) == 0,
               "cache size must be a whole number of sets");
  sets_ = config.sets();
  NDFT_REQUIRE(sets_ > 0, "cache must have at least one set");
  lines_.resize(static_cast<std::size_t>(sets_) * config.ways);
}

Cache::Line* Cache::lookup(Addr line_addr) {
  const unsigned set = set_of(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == line_addr) {
      return &base[w];
    }
  }
  return nullptr;
}

Cache::Line& Cache::choose_victim(unsigned set) {
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  Line* victim = base;
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      return base[w];
    }
    if (base[w].lru < victim->lru) {
      victim = &base[w];
    }
  }
  return *victim;
}

void Cache::complete(mem::MemRequest& req, TimePs at) {
  if (req.on_complete) {
    auto callback = std::move(req.on_complete);
    queue().schedule_at(at, [callback = std::move(callback), at] {
      callback(at);
    });
  }
}

void Cache::access(mem::MemRequest req) {
  NDFT_ASSERT_MSG(req.size <= config_.line_bytes,
                  "requests must be split to line granularity by the core");
  const Addr line_addr = line_of(req.addr);
  ++counters_.accesses;

  // Train the prefetcher on every demand access (hits included) so the
  // stream keeps running ahead of the demand front.
  if (config_.prefetch) {
    maybe_prefetch(line_addr);
  }

  if (Line* line = lookup(line_addr)) {
    ++counters_.hits;
    line->lru = ++lru_tick_;
    if (req.is_write) {
      line->dirty = true;
    }
    complete(req, now() + config_.hit_latency_ps);
    return;
  }

  ++counters_.misses;

  // Full-line store misses install without fetching (write-validate):
  // streaming kernels use non-temporal stores, so the read-for-ownership
  // a plain write-allocate would add does not exist in tuned code.
  if (req.is_write && req.size == config_.line_bytes &&
      mshrs_.count(line_addr) == 0) {
    Line& victim = choose_victim(set_of(line_addr));
    if (victim.valid && victim.dirty) {
      ++counters_.writebacks;
      mem::MemRequest writeback;
      writeback.addr = victim.tag * config_.line_bytes;
      writeback.size = config_.line_bytes;
      writeback.is_write = true;
      next_->access(std::move(writeback));
    }
    if (victim.valid) {
      ++counters_.evictions;
    }
    victim.valid = true;
    victim.dirty = true;
    victim.tag = line_addr;
    victim.lru = ++lru_tick_;
    complete(req, now() + config_.hit_latency_ps);
    return;
  }

  // Coalesce into an existing MSHR for the same line.
  if (auto it = mshrs_.find(line_addr); it != mshrs_.end()) {
    ++counters_.coalesced;
    it->second.is_prefetch = false;  // a demand request now depends on it
    it->second.waiters.push_back(std::move(req));
    return;
  }

  if (mshrs_.size() >= config_.mshrs) {
    ++counters_.mshr_stalls;
    blocked_.push_back(std::move(req));
    return;
  }

  Mshr& mshr = mshrs_[line_addr];
  mshr.is_prefetch = false;
  mshr.waiters.push_back(std::move(req));
  issue_fill(line_addr, /*is_prefetch=*/false);
}

void Cache::issue_fill(Addr line_addr, bool is_prefetch) {
  mem::MemRequest fill;
  fill.addr = line_addr * config_.line_bytes;
  fill.size = config_.line_bytes;
  fill.is_write = false;
  fill.on_complete = [this, line_addr](TimePs) { handle_fill(line_addr); };
  if (is_prefetch) {
    ++counters_.prefetches;
  }
  // Tag lookup time before the miss propagates downstream.
  queue().schedule_after(config_.hit_latency_ps,
                         [this, fill = std::move(fill)]() mutable {
                           next_->access(std::move(fill));
                         });
}

void Cache::handle_fill(Addr line_addr) {
  const unsigned set = set_of(line_addr);
  Line& victim = choose_victim(set);
  if (victim.valid && victim.dirty) {
    ++counters_.writebacks;
    mem::MemRequest writeback;
    writeback.addr = victim.tag * config_.line_bytes;
    writeback.size = config_.line_bytes;
    writeback.is_write = true;
    next_->access(std::move(writeback));
  }
  if (victim.valid) {
    ++counters_.evictions;
  }
  victim.valid = true;
  victim.dirty = false;
  victim.tag = line_addr;
  victim.lru = ++lru_tick_;

  const auto it = mshrs_.find(line_addr);
  if (it != mshrs_.end()) {
    for (auto& waiter : it->second.waiters) {
      if (waiter.is_write) {
        victim.dirty = true;
      }
      complete(waiter, now() + config_.hit_latency_ps);
    }
    mshrs_.erase(it);
  }
  retry_blocked();
}

void Cache::retry_blocked() {
  while (!blocked_.empty() && mshrs_.size() < config_.mshrs) {
    mem::MemRequest req = std::move(blocked_.front());
    blocked_.pop_front();
    access(std::move(req));
  }
}

void Cache::maybe_prefetch(Addr line_addr) {
  // One stream per 128 KiB region (large enough that strided kernels see
  // dozens of accesses per region); a stride confirmed twice triggers
  // prefetches `prefetch_degree` strides ahead.
  const Addr page = line_addr / ((128 * 1024) / config_.line_bytes);
  StrideStream& stream = streams_[page];
  const std::int64_t stride =
      static_cast<std::int64_t>(line_addr) -
      static_cast<std::int64_t>(stream.last_line);
  if (stream.last_line != 0 && stride != 0 && stride == stream.stride) {
    stream.confidence = std::min(stream.confidence + 1, 4);
  } else if (stream.last_line != 0) {
    stream.confidence = 0;
    stream.stride = stride;
  }
  stream.last_line = line_addr;
  if (stream.confidence >= 2) {
    for (unsigned i = 1; i <= config_.prefetch_degree; ++i) {
      const Addr target =
          line_addr + static_cast<Addr>(stream.stride) * i;
      if (lookup(target) != nullptr || mshrs_.count(target) != 0 ||
          mshrs_.size() >= config_.mshrs) {
        continue;
      }
      mshrs_[target].is_prefetch = true;
      issue_fill(target, /*is_prefetch=*/true);
    }
  }
  // Bound the stream table.
  if (streams_.size() > 64) {
    streams_.erase(streams_.begin());
  }
}

void Cache::flush() {
  for (Line& line : lines_) {
    if (line.valid && line.dirty) {
      ++counters_.flush_writebacks;
      mem::MemRequest writeback;
      writeback.addr = line.tag * config_.line_bytes;
      writeback.size = config_.line_bytes;
      writeback.is_write = true;
      next_->access(std::move(writeback));
    }
    line = Line{};
  }
  streams_.clear();
}

void Cache::invalidate_all() {
  for (Line& line : lines_) {
    line = Line{};
  }
  streams_.clear();
}

double Cache::hit_ratio() const noexcept {
  return counters_.accesses == 0
             ? 0.0
             : static_cast<double>(counters_.hits) /
                   static_cast<double>(counters_.accesses);
}

void Cache::publish_stats() {
  stats().set("accesses", static_cast<double>(counters_.accesses));
  stats().set("hits", static_cast<double>(counters_.hits));
  stats().set("misses", static_cast<double>(counters_.misses));
  stats().set("mshr_coalesced", static_cast<double>(counters_.coalesced));
  stats().set("mshr_stalls", static_cast<double>(counters_.mshr_stalls));
  stats().set("writebacks", static_cast<double>(counters_.writebacks));
  stats().set("evictions", static_cast<double>(counters_.evictions));
  stats().set("prefetch_issued", static_cast<double>(counters_.prefetches));
  stats().set("flush_writebacks",
              static_cast<double>(counters_.flush_writebacks));
}

PrivateHierarchy::PrivateHierarchy(const std::string& name,
                                   sim::EventQueue& queue,
                                   const CacheConfig& l1_cfg,
                                   const CacheConfig& l2_cfg,
                                   mem::MemoryPort& shared)
    : l2_(std::make_unique<Cache>(name + ".l2", queue, l2_cfg, shared)),
      l1_(std::make_unique<Cache>(name + ".l1", queue, l1_cfg, *l2_)) {}

}  // namespace ndft::cache
