#pragma once
// Minimal command-line front end shared by the `ndft_run` tool: parses
// --atoms/--mode/--granularity style flags without external dependencies.

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ndft::core {

/// Parsed command line: --key value pairs plus positional arguments.
class CliArgs {
 public:
  /// Parses argv; flags take the next token as their value.
  CliArgs(int argc, const char* const* argv);

  /// Value of --name, or `fallback` when absent.
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;

  /// Integer flag with fallback; throws NdftError on malformed input.
  long get_int(const std::string& name, long fallback) const;

  /// True when --name was passed (with or without a value).
  bool has(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ndft::core
