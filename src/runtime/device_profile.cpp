#include "runtime/device_profile.hpp"

#include "common/units.hpp"

namespace ndft::runtime {

DeviceProfile DeviceProfile::table3_cpu() {
  DeviceProfile p;
  p.kind = DeviceKind::kCpu;
  p.peak_gflops = 8 * 3.0 * 32.0;  // 8 cores x 3 GHz x 32 flop/cyc
  p.dram_gbps = 100.0;             // HBM over 4 SerDes links, sustained
  p.link_gbps = 250.0;             // data relocation into CPU-friendly layout
  p.switch_latency_ps = 20 * kPsPerUs;
  p.blocked_compute_efficiency = 0.65;  // wide OoO cores on dense panels
  return p;
}

DeviceProfile DeviceProfile::table3_ndp() {
  DeviceProfile p;
  p.kind = DeviceKind::kNdp;
  p.peak_gflops = 256 * 2.0 * 0.8;   // 256 cores x 2 GHz x 0.8 flop/cyc
  p.dram_gbps = 2000.0;              // stack-local HBM, sustained aggregate
  p.link_gbps = 250.0;
  p.switch_latency_ps = 20 * kPsPerUs;
  p.blocked_compute_efficiency = 0.5;  // in-order cores on dense panels
  return p;
}

DeviceProfile DeviceProfile::xeon_baseline() {
  DeviceProfile p;
  p.kind = DeviceKind::kCpu;
  p.peak_gflops = 24 * 2.4 * 16.0;  // 24 cores x 2.4 GHz x 16 flop/cyc
  p.dram_gbps = 60.0;               // 4-channel DDR4-2400, sustained
  p.link_gbps = 60.0;
  p.switch_latency_ps = 0;
  p.blocked_compute_efficiency = 0.45;  // dual-socket NUMA panel scaling
  return p;
}

}  // namespace ndft::runtime
