// Explores the cost-aware offloading mechanism: how the SCA classifies
// each kernel, what the Eq. 1 overheads look like, and how the schedule
// reacts when the machine balance changes (e.g. a beefier CPU or slower
// NDP links).
//
//   ./scheduler_playground [atoms]           (default Si_1024)

#include <cstdio>
#include <cstdlib>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"
#include "runtime/sca.hpp"

using namespace ndft;

namespace {

void show_plan(const char* title, const dft::Workload& workload,
               const runtime::DeviceProfile& cpu,
               const runtime::DeviceProfile& ndp) {
  const runtime::Sca sca(cpu, ndp);
  const runtime::CostModel cost(cpu, ndp);
  const runtime::Scheduler scheduler(sca, cost);
  const runtime::ExecutionPlan plan = scheduler.plan(workload);

  std::printf("--- %s (CPU %.0f GF / %.0f GB/s, NDP %.0f GF / %.0f GB/s) "
              "---\n",
              title, cpu.peak_gflops, cpu.dram_gbps, ndp.peak_gflops,
              ndp.dram_gbps);
  TextTable table({"kernel", "AI", "CPU est", "NDP est", "placed on",
                   "crossing cost"});
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    const dft::KernelWork& k = workload.kernels[i];
    const runtime::KernelAnalysis a = sca.analyze(k);
    const runtime::Placement& p = plan.placements[i];
    table.add_row({k.name, strformat("%.2f", a.arithmetic_intensity),
                   format_time(a.est_cpu_ps), format_time(a.est_ndp_ps),
                   to_string(p.device),
                   p.crossing
                       ? format_time(p.transfer_in_ps + p.switch_in_ps)
                       : std::string("-")});
  }
  std::printf("%s", table.render().c_str());
  std::printf("estimated total %s, overhead %s (%.1f %%), %u crossings\n\n",
              format_time(plan.est_total_ps).c_str(),
              format_time(plan.est_overhead_ps).c_str(),
              plan.overhead_fraction() * 100.0, plan.crossings);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t atoms = 1024;
  if (argc > 1) atoms = std::strtoul(argv[1], nullptr, 10);

  const core::NdftSystem system;
  const dft::Workload workload = system.workload_for(atoms);

  // The paper's configuration.
  show_plan("Table III machine", workload, system.config().cpu_profile,
            system.config().ndp_profile);

  // What if the host CPU had HBM-class bandwidth? Memory-bound kernels
  // stop being worth offloading.
  runtime::DeviceProfile fat_cpu = system.config().cpu_profile;
  fat_cpu.dram_gbps = 2000.0;
  show_plan("hypothetical HBM-fed CPU", workload, fat_cpu,
            system.config().ndp_profile);

  // What if CPU<->NDP crossings were nearly free? The schedule stays the
  // same but the overhead disappears.
  runtime::DeviceProfile cheap_cpu = system.config().cpu_profile;
  runtime::DeviceProfile cheap_ndp = system.config().ndp_profile;
  cheap_cpu.link_gbps = 10000.0;
  cheap_ndp.link_gbps = 10000.0;
  cheap_cpu.switch_latency_ps = 0;
  cheap_ndp.switch_latency_ps = 0;
  show_plan("free crossings", workload, cheap_cpu, cheap_ndp);

  // Granularity comparison (the Section IV-A1 argument).
  std::printf("--- offload granularity on Si_%zu ---\n", atoms);
  TextTable table({"granularity", "est total", "overhead %"});
  const auto row = [&](const char* name, runtime::Granularity g) {
    const runtime::ExecutionPlan plan = system.plan(workload, g);
    table.add_row({name, format_time(plan.est_total_ps),
                   format_percent(plan.overhead_fraction())});
  };
  row("instruction", runtime::Granularity::kInstruction);
  row("basic block", runtime::Granularity::kBasicBlock);
  row("function (NDFT)", runtime::Granularity::kFunction);
  row("whole kernel", runtime::Granularity::kKernel);
  std::printf("%s", table.render().c_str());
  return 0;
}
