// Computes the classic Cohen-Bergstresser silicon band structure on the
// primitive FCC cell along L -> Gamma -> X -> K -> Gamma, prints an ASCII
// rendering and the direct/indirect gaps.
//
//   ./si_band_structure [ecut_ry] [segments]   (defaults: 9 Ry, 10)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dft/kpoints.hpp"

using namespace ndft;

namespace {
constexpr double kEvPerHa = 27.211386;
}

int main(int argc, char** argv) {
  double ecut_ry = 9.0;
  unsigned segments = 10;
  if (argc > 1) ecut_ry = std::strtod(argv[1], nullptr);
  if (argc > 2) segments = static_cast<unsigned>(
      std::strtoul(argv[2], nullptr, 10));

  const dft::Crystal primitive = dft::silicon_primitive();
  const dft::PlaneWaveBasis basis(primitive, ecut_ry * 0.5);
  std::printf("primitive Si cell: %zu plane waves at %.1f Ry\n",
              basis.size(), ecut_ry);

  const std::vector<dft::KPoint> path =
      dft::fcc_kpath(dft::kSiliconLatticeBohr, segments);
  const std::size_t bands = 8;  // 4 valence + 4 conduction
  const std::vector<dft::BandsAtK> structure =
      dft::band_structure(basis, path, bands);

  // Reference energies to the valence-band maximum (primitive cell:
  // 2 atoms x 4 valence electrons = 4 filled bands).
  const std::size_t valence = 4;
  const dft::GapSummary gap = dft::find_gap(structure, valence);
  const double vbm = gap.vbm_ha;

  std::printf("\n%-8s", "k");
  for (std::size_t b = 0; b < bands; ++b) {
    std::printf("  band%zu", b);
  }
  std::printf("   (eV relative to VBM)\n");
  for (const dft::BandsAtK& at_k : structure) {
    std::printf("%-8s", at_k.kpoint.label.empty()
                            ? "."
                            : at_k.kpoint.label.c_str());
    for (std::size_t b = 0; b < bands; ++b) {
      std::printf(" %6.2f", (at_k.energies_ha[b] - vbm) * kEvPerHa);
    }
    std::printf("\n");
  }

  const dft::GapSummary indirect = gap;
  std::printf("\nindirect gap: %.3f eV (VBM at %s, CBM at %s)\n",
              indirect.indirect_gap_ev(),
              indirect.vbm_label.empty() ? "path" : indirect.vbm_label.c_str(),
              indirect.cbm_label.empty() ? "path" : indirect.cbm_label.c_str());

  // Direct gap at Gamma.
  for (const dft::BandsAtK& at_k : structure) {
    if (at_k.kpoint.label == "Gamma") {
      std::printf("direct gap at Gamma: %.3f eV\n",
                  (at_k.energies_ha[4] - at_k.energies_ha[3]) * kEvPerHa);
      break;
    }
  }
  std::printf("(experiment: indirect 1.12 eV, direct ~3.4 eV; "
              "Cohen-Bergstresser EPM reproduces both near these values)\n");
  return 0;
}
