// Reproduces Figure 7: execution-time comparison and per-kernel breakdown
// of CPU, GPU and NDFT on the small (Si_64) and large (Si_1024) systems,
// plus the quantitative claims the paper attaches to the figure.

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"

using namespace ndft;

namespace {

void run_system(const core::NdftSystem& system, std::size_t atoms,
                const char* label) {
  const dft::Workload workload = system.workload_for(atoms);
  const core::RunReport cpu = system.run(workload,
                                         core::ExecMode::kCpuBaseline);
  const core::RunReport gpu = system.run(workload,
                                         core::ExecMode::kGpuBaseline);
  const core::RunReport ndft = system.run(workload, core::ExecMode::kNdft);

  std::printf("=== Fig. 7(%s): Si_%zu ===\n", label, atoms);
  TextTable table({"kernel", "CPU", "GPU", "NDFT", "NDFT device"});
  for (std::size_t i = 0; i < cpu.kernels.size(); ++i) {
    table.add_row({cpu.kernels[i].name, format_time(cpu.kernels[i].time_ps),
                   format_time(gpu.kernels[i].time_ps),
                   format_time(ndft.kernels[i].time_ps),
                   to_string(ndft.kernels[i].device)});
  }
  table.add_row({"(scheduling overhead)", "-", "-",
                 format_time(ndft.sched_overhead_ps), "-"});
  table.add_row({"TOTAL", format_time(cpu.total_ps()),
                 format_time(gpu.total_ps()), format_time(ndft.total_ps()),
                 "-"});
  std::printf("%s", table.render().c_str());

  const double vs_cpu = core::speedup(cpu, ndft);
  const double vs_gpu = core::speedup(gpu, ndft);
  const double gpu_vs_cpu = core::speedup(cpu, gpu);
  std::printf("NDFT speedup vs CPU: %.2fx   vs GPU: %.2fx   (GPU vs CPU: "
              "%.2fx)\n",
              vs_cpu, vs_gpu, gpu_vs_cpu);

  const auto kernel_speedup = [&](KernelClass cls) {
    const TimePs c = cpu.time_of(cls);
    const TimePs n = ndft.time_of(cls);
    return n == 0 ? 0.0 : static_cast<double>(c) / static_cast<double>(n);
  };
  std::printf("  FFT vs CPU: %.2fx   FaceSplit vs CPU: %.2fx\n",
              kernel_speedup(KernelClass::kFft),
              kernel_speedup(KernelClass::kFaceSplit));
  const TimePs gpu_gemm = gpu.time_of(KernelClass::kGemm);
  const TimePs ndft_gemm = ndft.time_of(KernelClass::kGemm);
  std::printf("  GEMM: GPU ahead of NDFT by %.1f %%\n",
              gpu_gemm == 0 ? 0.0
                            : (static_cast<double>(ndft_gemm) /
                                   static_cast<double>(gpu_gemm) -
                               1.0) * 100.0);
  std::printf("  scheduling overhead: %.2f %% of NDFT total\n",
              100.0 * static_cast<double>(ndft.sched_overhead_ps) /
                  static_cast<double>(ndft.total_ps()));
  const TimePs gpu_comm = gpu.time_of(KernelClass::kAlltoall);
  const TimePs ndft_comm = ndft.time_of(KernelClass::kAlltoall);
  std::printf("  Global Comm: NDFT %s vs GPU %s (%+.1f %%)\n",
              format_time(ndft_comm).c_str(), format_time(gpu_comm).c_str(),
              gpu_comm == 0 ? 0.0
                            : (static_cast<double>(ndft_comm) /
                                   static_cast<double>(gpu_comm) -
                               1.0) * 100.0);

  // Footprint discussion attached to Fig. 7 in the paper.
  const core::RunReport ndp = system.run(workload, core::ExecMode::kNdpOnly);
  std::printf("  pseudopotential footprint: NDP %s -> NDFT %s "
              "(-%.1f %%), NDFT/CPU = %.2fx\n\n",
              format_bytes(ndp.pseudo.total).c_str(),
              format_bytes(ndft.pseudo.total).c_str(),
              100.0 * (1.0 - static_cast<double>(ndft.pseudo.total) /
                                 static_cast<double>(ndp.pseudo.total)),
              static_cast<double>(ndft.pseudo.total) /
                  static_cast<double>(cpu.pseudo.total));
}

}  // namespace

int main() {
  std::printf("Fig. 7 reproduction: CPU vs GPU vs NDFT breakdown\n");
  std::printf("(paper: NDFT 1.9x/5.2x vs CPU, 1.6x/2.5x vs GPU; FFT 11.2x "
              "large; FaceSplit 1.99x small;\n GPU GEMM ahead 35.9/22.2 %%; "
              "sched overhead 3.8/4.9 %%; footprint -57.8 %%, 1.08x CPU)\n\n");
  const core::NdftSystem system;
  run_system(system, 64, "a, small");
  run_system(system, 1024, "b, large");
  return 0;
}
