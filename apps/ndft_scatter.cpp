// ndft_scatter: the scatter/gather CLI. Builds a ShardedEngine over a
// mix of in-process engines and remote ndft_serve instances, runs one
// job through it, prints the merged ndft.job_result.v1 document to
// stdout and the fan-out accounting to stderr. The payload is bitwise
// identical to what a single engine would produce for the same request
// (see docs/SHARDING.md), so this doubles as a quick conformance probe
// against a live cluster.
//
// Usage: ndft_scatter [options]
//   --local N           in-process backend engines (default 4 when no
//                       --connect is given, else 0)
//   --connect HOST:PORT remote ndft_serve backend (repeatable)
//   --auth-token T      bearer token sent to remote backends
//   --job FILE          ndft.job_request.v1 JSON to run ("-" = stdin;
//                       default: a 4x4x4 Monkhorst-Pack band job)
//   --mp N              grid of the default band job (default 4)
//   --shards N          target sub-jobs per backend (default 4)
//   --no-fallback       fail instead of degrading to local execution
//                       when every backend is down
//   --quiet             suppress the fan-out summary on stderr

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/request_json.hpp"
#include "api/shard.hpp"
#include "common/json.hpp"

namespace {

[[noreturn]] void usage_error(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "%s: %s (see the header comment for usage)\n", argv0,
               what.c_str());
  std::exit(2);
}

std::string read_all(std::FILE* file) {
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, n);
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t local = 0;
  bool local_set = false;
  struct Remote {
    std::string host;
    std::uint16_t port = 0;
  };
  std::vector<Remote> remotes;
  std::string bearer;
  std::string job_path;
  unsigned mp = 4;
  ndft::api::ShardedEngineConfig shard_config;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(argv[0], arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--local") {
      local = static_cast<std::size_t>(std::atoi(value().c_str()));
      local_set = true;
    } else if (arg == "--connect") {
      const std::string spec = value();
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon + 1 >= spec.size()) {
        usage_error(argv[0], "--connect wants HOST:PORT, got " + spec);
      }
      Remote remote;
      remote.host = spec.substr(0, colon);
      remote.port =
          static_cast<std::uint16_t>(std::atoi(spec.c_str() + colon + 1));
      remotes.push_back(std::move(remote));
    } else if (arg == "--auth-token") {
      bearer = value();
    } else if (arg == "--job") {
      job_path = value();
    } else if (arg == "--mp") {
      mp = static_cast<unsigned>(std::atoi(value().c_str()));
    } else if (arg == "--shards") {
      shard_config.shards_per_backend =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--no-fallback") {
      shard_config.allow_local_fallback = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see the header comment of apps/ndft_scatter.cpp\n");
      return 0;
    } else {
      usage_error(argv[0], "unknown option " + arg);
    }
  }
  if (!local_set && remotes.empty()) local = 4;
  if (local == 0 && remotes.empty()) {
    usage_error(argv[0], "no backends: give --local N and/or --connect");
  }

  try {
    ndft::api::JobRequest request;
    if (job_path.empty()) {
      ndft::api::BandStructureJob job;
      job.sampling = ndft::api::BandStructureJob::Sampling::kMonkhorstPack;
      job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = mp;
      request = job;
    } else {
      std::string text;
      if (job_path == "-") {
        text = read_all(stdin);
      } else {
        std::FILE* file = std::fopen(job_path.c_str(), "r");
        if (file == nullptr) {
          std::fprintf(stderr, "%s: cannot open %s\n", argv[0],
                       job_path.c_str());
          return 1;
        }
        text = read_all(file);
        std::fclose(file);
      }
      request = ndft::api::job_request_from_json(ndft::Json::parse(text));
    }

    std::vector<std::unique_ptr<ndft::api::Engine>> engines;
    std::vector<std::shared_ptr<ndft::api::Backend>> backends;
    for (std::size_t i = 0; i < local; ++i) {
      ndft::api::EngineConfig config;
      config.dispatch_threads = 0;  // backends run on the sharder workers
      engines.push_back(std::make_unique<ndft::api::Engine>(config));
      backends.push_back(std::make_shared<ndft::api::LocalBackend>(
          *engines.back(), "local-" + std::to_string(i)));
    }
    for (const Remote& remote : remotes) {
      ndft::api::HttpBackend::Config config;
      config.host = remote.host;
      config.port = remote.port;
      config.bearer = bearer;
      backends.push_back(
          std::make_shared<ndft::api::HttpBackend>(std::move(config)));
    }
    ndft::api::ShardedEngine sharded(std::move(backends), shard_config);

    const ndft::api::JobResult result = sharded.run(request);
    const std::string text = result.to_json().dump(2);
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);

    if (!quiet) {
      std::fprintf(
          stderr,
          "ndft_scatter: %zu backends, %llu shards executed, "
          "%llu rerouted, %llu backends failed, %llu local-fallback\n",
          sharded.backend_count(),
          static_cast<unsigned long long>(sharded.shards_executed()),
          static_cast<unsigned long long>(sharded.shards_rerouted()),
          static_cast<unsigned long long>(sharded.backends_failed()),
          static_cast<unsigned long long>(sharded.local_fallback_shards()));
    }
    return result.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ndft_scatter: fatal: %s\n", e.what());
    return 1;
  }
}
