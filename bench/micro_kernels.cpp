// google-benchmark microbenchmarks of the from-scratch numerical kernels
// (FFT, GEMM, SYEVD, face-splitting product, pseudopotential apply).
// These measure the functional library itself, not the simulated machines.

#include <benchmark/benchmark.h>

#include "dft/basis.hpp"
#include "dft/epm.hpp"
#include "dft/fft.hpp"
#include "dft/lattice.hpp"
#include "dft/linalg.hpp"
#include "dft/pseudopotential.hpp"

using namespace ndft;

namespace {

void BM_Fft1d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dft::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dft::Complex{std::sin(0.1 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    dft::fft(data, dft::FftDirection::kForward);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1d)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(12000);

void BM_Fft3d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dft::Grid3 grid(n, n, n);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = dft::Complex{static_cast<double>(i % 7), 0.0};
  }
  for (auto _ : state) {
    dft::fft3d(grid, dft::FftDirection::kForward);
    benchmark::DoNotOptimize(grid.raw().data());
  }
}
BENCHMARK(BM_Fft3d)->Arg(16)->Arg(24)->Arg(32);

void BM_GemmReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dft::RealMatrix a(n, n);
  dft::RealMatrix b(n, n);
  dft::RealMatrix c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<double>((i + j) % 13) * 0.1;
      b(i, j) = static_cast<double>((i * 3 + j) % 7) * 0.2;
    }
  }
  for (auto _ : state) {
    dft::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmReal)->Arg(64)->Arg(128)->Arg(256);

void BM_Syev(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dft::RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = std::cos(static_cast<double>(i * j + 1));
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  for (auto _ : state) {
    const dft::EigenResult r = dft::syev(m);
    benchmark::DoNotOptimize(r.eigenvalues.data());
  }
}
BENCHMARK(BM_Syev)->Arg(64)->Arg(128)->Arg(256);

void BM_FaceSplit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dft::Complex> v(n);
  std::vector<dft::Complex> c(n);
  std::vector<dft::Complex> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = dft::Complex{0.3, 0.1 * static_cast<double>(i % 5)};
    c[i] = dft::Complex{0.2, -0.1};
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::conj(v[i]) * c[i];
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 48);
}
BENCHMARK(BM_FaceSplit)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_PseudoApply(benchmark::State& state) {
  const dft::Crystal crystal = dft::Crystal::silicon_supercell(8);
  const dft::PlaneWaveBasis basis(crystal, 1.5);
  const dft::KbProjectors projectors(basis);
  std::vector<dft::Complex> psi(basis.size());
  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi[i] = dft::Complex{1.0 / static_cast<double>(i + 1), 0.0};
  }
  std::vector<dft::Complex> out(psi.size());
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), dft::Complex{});
    projectors.apply(psi, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PseudoApply);

}  // namespace

BENCHMARK_MAIN();
