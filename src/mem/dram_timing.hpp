#pragma once
// DRAM device timing parameters, expressed in device clock cycles, plus
// presets for the two technologies in the paper's Table III:
//   - DDR4-2400 for the Xeon CPU baseline's main memory
//   - HBM2 at 1000 MHz bus (2 Gb/s/pin) for the 3D-stacked NDP memory

#include <cstdint>

#include "common/types.hpp"

namespace ndft::mem {

/// Row-buffer management policy of the controller.
enum class PagePolicy : std::uint8_t {
  kOpen,    ///< leave rows open, bet on row hits (FR-FCFS default)
  kClosed,  ///< auto-precharge after every access: no hits, no conflicts
};

/// JEDEC-style timing constraints in device clock cycles.
/// Only the constraints that matter at transaction granularity are kept;
/// this is the same modelling level as Ramulator's per-bank state machine.
struct DramTiming {
  TimePs tCK_ps;     ///< clock period in picoseconds
  unsigned CL;       ///< CAS latency (READ to first data)
  unsigned CWL;      ///< CAS write latency
  unsigned tRCD;     ///< ACT to READ/WRITE
  unsigned tRP;      ///< PRE to ACT
  unsigned tRAS;     ///< ACT to PRE (minimum row-open time)
  unsigned tRC;      ///< ACT to ACT, same bank
  unsigned tCCD;     ///< READ to READ / column-to-column
  unsigned tRRD;     ///< ACT to ACT, different banks
  unsigned tFAW;     ///< four-activate window
  unsigned tWR;      ///< write recovery (end of write data to PRE)
  unsigned tWTR;     ///< write-to-read turnaround
  unsigned tRTP;     ///< read-to-precharge
  unsigned tREFI;    ///< refresh interval
  unsigned tRFC;     ///< refresh cycle time
  unsigned burst_length;     ///< beats per access (data bus busy BL/2 cycles)
  unsigned bus_width_bits;   ///< data bus width per channel

  /// Bytes transferred by one burst access.
  Bytes burst_bytes() const noexcept {
    return static_cast<Bytes>(bus_width_bits) / 8 * burst_length;
  }

  /// Data-bus occupancy of one burst in picoseconds (DDR: BL/2 clocks).
  TimePs burst_time_ps() const noexcept {
    return tCK_ps * burst_length / 2;
  }

  /// Peak per-channel bandwidth in decimal GB/s.
  double peak_gbps() const noexcept {
    return static_cast<double>(burst_bytes()) /
           static_cast<double>(burst_time_ps()) * 1000.0;
  }

  /// DDR4-2400R-like timing (tCK = 833 ps, CL17). 64-bit channel, BL8.
  static DramTiming ddr4_2400();

  /// HBM2 legacy-mode timing at 1000 MHz bus clock: 128-bit channel, BL4,
  /// 64 B per access — matches Table III's "128-bit bus width, 1000 MHz".
  static DramTiming hbm2_1000();
};

/// Per-channel geometry. Capacity = banks * rows * row_bytes.
struct DramGeometry {
  unsigned banks;     ///< banks per channel (bank groups folded in)
  unsigned rows;      ///< rows per bank
  Bytes row_bytes;    ///< row (page) size in bytes

  Bytes channel_capacity() const noexcept {
    return static_cast<Bytes>(banks) * rows * row_bytes;
  }

  /// DDR4: 16 banks, 8 KiB rows, sized for 16 GiB per channel.
  static DramGeometry ddr4_16gb_channel();

  /// HBM2: 16 banks, 2 KiB rows, sized for 512 MiB per channel
  /// (4 GiB stack / 8 channels, Table III).
  static DramGeometry hbm2_512mb_channel();
};

}  // namespace ndft::mem
