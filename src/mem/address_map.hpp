#pragma once
// Physical address decomposition for multi-channel DRAM systems.
//
// Layout (low to high): [line offset | channel | column | bank | row].
// Interleaving consecutive lines across channels maximises channel-level
// parallelism for the streaming access patterns that dominate LR-TDDFT.

#include "common/math_util.hpp"
#include "common/types.hpp"
#include "mem/dram_timing.hpp"

namespace ndft::mem {

/// A fully decoded DRAM coordinate.
struct DramCoord {
  unsigned channel = 0;
  unsigned bank = 0;
  unsigned row = 0;
  unsigned column = 0;  ///< line-granularity column index within the row
};

/// Decodes physical addresses into channel/bank/row/column coordinates.
class AddressMap {
 public:
  /// `line_bytes` is the transaction granularity (cache line).
  AddressMap(unsigned channels, const DramGeometry& geometry,
             Bytes line_bytes);

  /// Total capacity across channels.
  Bytes capacity() const noexcept { return capacity_; }
  /// Number of channels.
  unsigned channels() const noexcept { return channels_; }
  /// Lines per DRAM row.
  unsigned lines_per_row() const noexcept { return lines_per_row_; }

  /// Decodes `addr`; the address is wrapped modulo capacity so synthetic
  /// traces can use unbounded virtual addresses.
  DramCoord decode(Addr addr) const noexcept;

 private:
  unsigned channels_;
  DramGeometry geometry_;
  Bytes line_bytes_;
  unsigned lines_per_row_;
  unsigned line_shift_;
  unsigned channel_bits_;
  unsigned column_bits_;
  unsigned bank_bits_;
  Bytes capacity_;
};

}  // namespace ndft::mem
