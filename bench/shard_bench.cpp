// bench_shard_bench: scatter/gather scaling of the ShardedEngine. One
// Monkhorst-Pack band-structure job is run on a plain Engine (the
// reference), then sharded across 1, 2 and 4 in-process LocalBackend
// engines. The process-wide ThreadPool is pinned to one thread for the
// timed region so parallelism comes from the sharder's per-backend
// workers alone — otherwise each backend's eigensolves would already
// fan out across every core and the backend count would measure nothing.
//
// Results go to BENCH_shard.json for cross-commit tracking. The payload
// of every sharded run is compared bitwise against the reference — the
// determinism contract of docs/SHARDING.md — and the 4-backend tier is
// expected to reach a 1.7x speedup over the 1-backend tier.
//
// Modes:
//   bench_shard_bench           8x8x8 grid (256 folded k-points), best of 3
//   bench_shard_bench --smoke   6x6x6 grid (108 folded k-points), single
//                               run; exits nonzero on a bitwise mismatch
//                               or a 4-backend speedup below 1.7x (the
//                               verify.sh --bench-smoke gate)
//
// The speedup gate only applies where it is physically meaningful: on a
// machine with fewer than 4 hardware threads the shard workers time-slice
// one core and wall-clock speedup cannot exist, so the gate is skipped
// (reported in the JSON as speedup_gated=false). The bitwise gate always
// applies — determinism does not depend on the core count.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/shard.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

using namespace ndft;

namespace {

using Clock = std::chrono::steady_clock;

struct TierResult {
  std::size_t backends = 0;
  std::size_t shards = 0;
  double wall_s = 0.0;
  double speedup = 0.0;  // vs the 1-backend tier
  bool bitwise_equal = false;
};

api::EngineConfig engine_config() {
  api::EngineConfig config;
  config.dispatch_threads = 0;  // run() is synchronous on the caller
  config.system.sampled_ops_per_kernel = 20000;
  config.system.min_ops_per_core = 200;
  return config;
}

api::JobRequest bench_job(unsigned grid) {
  api::BandStructureJob job;
  job.sampling = api::BandStructureJob::Sampling::kMonkhorstPack;
  job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = grid;
  job.ecut_ry = 12.0;  // a denser basis so eigensolves dominate scatter
  job.bands = 8;
  job.valence_bands = 4;
  return job;
}

double time_run(const std::function<api::JobResult()>& run,
                std::size_t repeats, std::string* payload,
                std::size_t* shards = nullptr) {
  double best_s = 0.0;
  for (std::size_t i = 0; i < repeats; ++i) {
    const Clock::time_point t0 = Clock::now();
    const api::JobResult result = run();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!result.ok()) {
      throw NdftError("bench job failed: " + result.error_message);
    }
    *payload = result.to_json().at("payload").dump();
    if (shards != nullptr && result.shard.has_value()) {
      *shards = result.shard->shards;
    }
    if (i == 0 || wall_s < best_s) best_s = wall_s;
  }
  return best_s;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const unsigned grid = smoke ? 6 : 8;
  const std::size_t repeats = smoke ? 1 : 3;
  const api::JobRequest request = bench_job(grid);

  // Pin the kernel pool to one thread: parallel_for then runs inline on
  // whichever sharder worker calls it, so N backends = N truly parallel
  // eigensolve streams. Restored before the process exits.
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t pool_threads = pool.threads();
  pool.resize(1);

  std::printf("scatter/gather scaling, %ux%ux%u MP band job%s\n\n", grid,
              grid, grid, smoke ? " (smoke)" : "");

  // The reference: one plain Engine, same single-threaded kernels.
  api::Engine reference_engine(engine_config());
  std::string reference_payload;
  (void)reference_engine.run(request);  // warm plan caches untimed
  const double reference_s = time_run(
      [&] { return reference_engine.run(request); }, repeats,
      &reference_payload);

  std::vector<TierResult> tiers;
  for (const std::size_t backends : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<api::Engine>> engines;
    std::vector<std::shared_ptr<api::Backend>> cluster;
    for (std::size_t i = 0; i < backends; ++i) {
      engines.push_back(std::make_unique<api::Engine>(engine_config()));
      cluster.push_back(std::make_shared<api::LocalBackend>(
          *engines.back(), "local-" + std::to_string(i)));
    }
    api::ShardedEngineConfig config;
    config.local = engine_config();
    api::ShardedEngine sharded(std::move(cluster), config);

    TierResult tier;
    tier.backends = backends;
    std::string payload;
    (void)sharded.run(request);  // warm every backend's plan caches
    tier.wall_s = time_run([&] { return sharded.run(request); }, repeats,
                           &payload, &tier.shards);
    tier.bitwise_equal = payload == reference_payload;
    tiers.push_back(tier);
  }
  for (TierResult& tier : tiers) {
    tier.speedup = tier.wall_s > 0.0 ? tiers.front().wall_s / tier.wall_s
                                     : 0.0;
  }
  pool.resize(pool_threads);

  TextTable table({"backends", "shards", "wall", "speedup", "bitwise"});
  table.add_row({"engine", "-", strformat("%.3f s", reference_s), "-", "-"});
  for (const TierResult& tier : tiers) {
    table.add_row({strformat("%zu", tier.backends),
                   strformat("%zu", tier.shards),
                   strformat("%.3f s", tier.wall_s),
                   strformat("%.2fx", tier.speedup),
                   tier.bitwise_equal ? "ok" : "MISMATCH"});
  }
  std::printf("%s\n", table.render().c_str());

  // Wall-clock speedup needs real cores under the shard workers; with
  // fewer than 4 hardware threads the 4-backend tier time-slices and the
  // gate would fail on machine shape, not on a sharding regression.
  const std::size_t hardware = std::thread::hardware_concurrency();
  const bool speedup_gated = hardware >= 4;

  Json bench = Json::object();
  bench.set("bench", "shard");
  bench.set("meta", run_metadata_json());
  bench.set("mp_grid", grid);
  bench.set("repeats", repeats);
  bench.set("reference_wall_s", reference_s);
  bench.set("hardware_concurrency", hardware);
  bench.set("speedup_gated", speedup_gated);
  Json tier_list = Json::array();
  for (const TierResult& tier : tiers) {
    Json entry = Json::object();
    entry.set("backends", tier.backends);
    entry.set("shards", tier.shards);
    entry.set("wall_s", tier.wall_s);
    entry.set("speedup", tier.speedup);
    entry.set("bitwise_equal", tier.bitwise_equal);
    tier_list.push_back(std::move(entry));
  }
  bench.set("tiers", std::move(tier_list));
  const char* path = "BENCH_shard.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }

  bool failed = false;
  for (const TierResult& tier : tiers) {
    if (!tier.bitwise_equal) {
      std::fprintf(stderr,
                   "FAIL: %zu-backend payload differs from the reference\n",
                   tier.backends);
      failed = true;
    }
  }
  if (smoke && tiers.back().speedup < 1.7) {
    if (speedup_gated) {
      std::fprintf(stderr, "FAIL: %zu-backend speedup %.2fx < 1.7x\n",
                   tiers.back().backends, tiers.back().speedup);
      failed = true;
    } else {
      std::printf(
          "note: %zu hardware thread(s) — speedup gate skipped "
          "(shard workers time-slice one core)\n",
          hardware);
    }
  }
  return failed ? 1 : 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "shard_bench: %s\n", error.what());
  return 1;
}
