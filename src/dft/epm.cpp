#include "dft/epm.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/kernel_trace.hpp"
#include "common/thread_pool.hpp"

namespace ndft::dft {
namespace {

/// Hartree per Rydberg.
constexpr double kHaPerRy = 0.5;
/// Hartree to electronvolt.
constexpr double kEvPerHa = 27.211386;

}  // namespace

double GroundState::band_gap_ev() const {
  NDFT_REQUIRE(valence_bands > 0 && valence_bands < energies_ha.size(),
               "band gap needs both valence and conduction bands");
  return (energies_ha[valence_bands] - energies_ha[valence_bands - 1]) *
         kEvPerHa;
}

double silicon_form_factor(double g2_units) {
  // Cohen & Bergstresser, PRB 141, 789 (1966), symmetric form factors for
  // Si: V(sqrt3) = -0.21 Ry, V(sqrt8) = +0.04 Ry, V(sqrt11) = +0.08 Ry.
  const double tolerance = 1e-6;
  if (std::fabs(g2_units - 3.0) < tolerance) return -0.21 * kHaPerRy;
  if (std::fabs(g2_units - 8.0) < tolerance) return 0.04 * kHaPerRy;
  if (std::fabs(g2_units - 11.0) < tolerance) return 0.08 * kHaPerRy;
  return 0.0;
}

double epm_potential(const Crystal& crystal, const GVector& g,
                     const GVector& gp) {
  const Vec3 dg = g.g - gp.g;
  const double unit = 2.0 * std::numbers::pi / kSiliconLatticeBohr;
  const double g2_units = dg.norm2() / (unit * unit);
  const double form = silicon_form_factor(g2_units);
  if (form == 0.0) {
    return 0.0;
  }
  // Structure factor averaged over atoms; real because atoms sit at +/-tau
  // around the bond-centred origin. Nonzero only on G vectors commensurate
  // with the primitive cell, which the average captures automatically.
  double structure = 0.0;
  for (const Vec3& position : crystal.positions()) {
    structure += std::cos(dg.dot(position));
  }
  structure /= static_cast<double>(crystal.atom_count());
  return form * structure;
}

GroundState solve_epm(const PlaneWaveBasis& basis, std::size_t bands,
                      OpCount* count) {
  const std::size_t n = basis.size();
  NDFT_REQUIRE(n > 0, "empty plane-wave basis");
  const auto& g = basis.gvectors();
  const TraceStage trace_stage("epm");
  trace_set_system(basis.crystal().atom_count(), n, basis.fft_size());

  // Rows of the upper triangle are independent: assemble on the thread
  // pool, then mirror (each pass writes disjoint rows, so the result is
  // identical for any thread count).
  RealMatrix hamiltonian(n, n);
  {
    TraceRegion region(KernelClass::kOther, "epm.assembly");
    region.set_dims(n, n, 0);
    region.add_work(static_cast<Flops>(n) * n * 8,
                    static_cast<Bytes>(n) * n * sizeof(double));
    region.set_io(0, static_cast<Bytes>(n) * n * sizeof(double));
    parallel_for(0, n, parallel_grain(n),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) {
                     hamiltonian(i, i) = 0.5 * g[i].g2;
                     for (std::size_t j = i + 1; j < n; ++j) {
                       hamiltonian(i, j) =
                           epm_potential(basis.crystal(), g[i], g[j]);
                     }
                   }
                 });
    mirror_upper(hamiltonian);
  }
  if (count != nullptr) {
    count->add(static_cast<Flops>(n) * n * 8,
               static_cast<Bytes>(n) * n * sizeof(double));
  }

  EigenResult eigen = syevd(hamiltonian, count);

  GroundState state;
  state.valence_bands = basis.crystal().atom_count() * 2;  // 4 e- per Si
  const std::size_t keep = (bands == 0) ? n : std::min(bands, n);
  NDFT_REQUIRE(keep > state.valence_bands,
               "band window must extend past the valence bands");
  state.energies_ha.assign(eigen.eigenvalues.begin(),
                           eigen.eigenvalues.begin() +
                               static_cast<std::ptrdiff_t>(keep));
  state.orbitals = RealMatrix(n, keep);
  for (std::size_t j = 0; j < keep; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      state.orbitals(i, j) = eigen.eigenvectors(i, j);
    }
  }
  return state;
}

}  // namespace ndft::dft
