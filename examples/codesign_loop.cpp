// codesign_loop: the hardware/software co-design loop in one program.
//
//   1. Run a real SCF ground state through the Engine with record_trace
//      set, so the run emits its measured kernel trace.
//   2. Replay the trace through a CoDesignJob: the engine calibrates the
//      SCA's CPU-side roofline from the measured kernel times, plans the
//      cost-aware CPU/NDP schedule for the *actual* workload, and
//      simulates that schedule on the CPU-NDP machine.
//
// This is the measured counterpart of scheduler_playground (which plans
// the analytic workload model): offload decisions here come from what
// the DFT pipeline really did.
//
//   example_codesign_loop [--atoms 8] [--iterations 4]

#include <cstdio>
#include <map>

#include "api/engine.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/cli.hpp"

using namespace ndft;

int main(int argc, char** argv) {
  try {
    const core::CliArgs args(argc, argv);
    const auto atoms = static_cast<std::size_t>(args.get_int("atoms", 8));
    const auto iterations =
        static_cast<unsigned>(args.get_int("iterations", 4));

    api::EngineConfig config;
    config.dispatch_threads = 0;
    api::Engine engine(config);

    // ---- 1. record a real run (after one untraced warmup, so the trace
    // measures kernel behaviour rather than first-touch allocation).
    api::ScfJob scf;
    scf.atoms = atoms;
    scf.ecut_ry = 4.0;
    scf.scf.max_iterations = iterations;
    engine.run(scf);
    scf.record_trace = true;
    const api::JobResult recorded = engine.run(scf);
    if (!recorded.ok()) {
      std::fprintf(stderr, "scf failed: %s\n",
                   recorded.error_message.c_str());
      return 1;
    }
    const KernelTrace& trace = *recorded.trace;
    std::printf("recorded Si_%zu SCF: %zu kernel events, %.1f ms traced\n\n",
                atoms, trace.events.size(), trace.total_host_ms());

    // Per-class view of what the run actually did.
    std::map<KernelClass, std::pair<Flops, double>> by_class;
    for (const TraceEvent& event : trace.events) {
      by_class[event.cls].first += event.flops;
      by_class[event.cls].second += event.host_ms;
    }
    TextTable classes({"class", "events", "GFLOP", "measured"});
    for (const auto& [cls, tally] : by_class) {
      classes.add_row({to_string(cls),
                       strformat("%zu", trace.count_of(cls)),
                       strformat("%.2f",
                                 static_cast<double>(tally.first) * 1e-9),
                       strformat("%.1f ms", tally.second)});
    }
    std::printf("%s\n", classes.render().c_str());

    // ---- 2. replay through the co-design loop.
    api::CoDesignJob replay;
    replay.trace = trace;
    replay.simulate = true;
    const api::JobResult result = engine.run(replay);
    if (!result.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   result.error_message.c_str());
      return 1;
    }
    const api::CoDesignPayload& payload = *result.codesign;

    const api::CalibrationPayload& fit = payload.calibration;
    std::printf("calibrated CPU roofline: %.1f GFLOP/s, %.1f GB/s, "
                "panel efficiency %.2f (worst fit ratio %.2fx over %zu "
                "kernels)\n\n",
                fit.peak_gflops, fit.dram_gbps, fit.blocked_efficiency,
                fit.max_ratio, fit.fitted_events);

    TextTable plan({"kernel", "device", "est", "crossing"});
    for (const api::PlacementPayload& p : payload.plan.placements) {
      plan.add_row({p.kernel, to_string(p.device),
                    format_time(p.est_time_ps), p.crossing ? "yes" : ""});
    }
    std::printf("%s\n", plan.render().c_str());
    std::printf("plan: %u crossings, estimated %s (+%s overhead)\n",
                payload.plan.crossings,
                format_time(payload.plan.est_total_ps).c_str(),
                format_time(payload.plan.est_overhead_ps).c_str());
    if (payload.simulate) {
      std::printf("simulated on the CPU-NDP machine: %s\n",
                  format_time(payload.simulate->total_ps).c_str());
    }
    return 0;
  } catch (const NdftError& error) {
    std::fprintf(stderr, "codesign_loop: %s\n", error.what());
    return 1;
  }
}
