// Unit tests for the analytical GPU baseline model.

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "gpu/gpu_model.hpp"

namespace ndft::gpu {
namespace {

TEST(GpuConfigTest, Dgx1Preset) {
  const GpuConfig config = GpuConfig::dgx1_v100x2();
  EXPECT_NEAR(config.peak_gflops, 15600.0, 1.0);
  EXPECT_NEAR(config.mem_gbps, 1800.0, 1.0);
  EXPECT_EQ(config.device_memory, 32ull << 30);
}

TEST(GpuModelTest, TransferScalesLinearly) {
  const GpuModel model(GpuConfig::dgx1_v100x2());
  EXPECT_EQ(model.transfer(0), 0u);
  const TimePs one_gb = model.transfer(1'000'000'000);
  const TimePs two_gb = model.transfer(2'000'000'000);
  EXPECT_NEAR(static_cast<double>(two_gb),
              2.0 * static_cast<double>(one_gb), 10.0);
  // 1 GB at 16 GB/s = 62.5 ms.
  EXPECT_NEAR(static_cast<double>(one_gb) / kPsPerMs, 62.5, 1.0);
}

TEST(GpuModelTest, PeerTransferUsesNvlink) {
  const GpuModel model(GpuConfig::dgx1_v100x2());
  // NVLink (140 GB/s) much faster than PCIe (16 GB/s).
  EXPECT_LT(model.peer_transfer(1 << 30) * 5, model.transfer(1 << 30));
}

TEST(GpuModelTest, ComputeBoundKernelTime) {
  GpuConfig config = GpuConfig::dgx1_v100x2();
  config.kernel_launch_ps = 0;
  const GpuModel model(config);
  // 15.6 TFLOP of perfectly-efficient work would take 1 s; at the GEMM
  // efficiency it takes 1/eff seconds.
  const Flops flops = 15'600'000'000'000ull;
  const GpuStepTime t =
      model.execute(KernelClass::kGemm, flops, /*device_bytes=*/0, 0, 0);
  EXPECT_NEAR(static_cast<double>(t.kernel) / kPsPerSec,
              1.0 / config.gemm.compute, 0.01);
}

TEST(GpuModelTest, MemoryBoundKernelTime) {
  GpuConfig config = GpuConfig::dgx1_v100x2();
  config.kernel_launch_ps = 0;
  const GpuModel model(config);
  // Pure streaming: 1.8 TB at full efficiency would be 1 s.
  const Bytes bytes = 1'800'000'000'000ull;
  const GpuStepTime t =
      model.execute(KernelClass::kFaceSplit, /*flops=*/0, bytes, 0, 0);
  EXPECT_NEAR(static_cast<double>(t.kernel) / kPsPerSec,
              1.0 / config.face_split.memory, 0.01);
}

TEST(GpuModelTest, RooflineTakesTheMax) {
  GpuConfig config = GpuConfig::dgx1_v100x2();
  config.kernel_launch_ps = 0;
  const GpuModel model(config);
  const GpuStepTime compute_only =
      model.execute(KernelClass::kFft, 1'000'000'000'000ull, 0, 0, 0);
  const GpuStepTime memory_only =
      model.execute(KernelClass::kFft, 0, 1'000'000'000'000ull, 0, 0);
  const GpuStepTime both = model.execute(
      KernelClass::kFft, 1'000'000'000'000ull, 1'000'000'000'000ull, 0, 0);
  EXPECT_EQ(both.kernel, std::max(compute_only.kernel, memory_only.kernel));
}

TEST(GpuModelTest, TransfersAddToTotal) {
  const GpuModel model(GpuConfig::dgx1_v100x2());
  const GpuStepTime t = model.execute(KernelClass::kFft, 1000, 1000,
                                      1 << 20, 1 << 21);
  EXPECT_GT(t.h2d, 0u);
  EXPECT_NEAR(static_cast<double>(t.d2h),
              2.0 * static_cast<double>(t.h2d), 2000.0);
  EXPECT_EQ(t.total(), t.h2d + t.kernel + t.d2h);
}

TEST(GpuModelTest, EfficiencyTableCoversAllClasses) {
  const GpuConfig config = GpuConfig::dgx1_v100x2();
  for (const KernelClass cls :
       {KernelClass::kFft, KernelClass::kFaceSplit, KernelClass::kGemm,
        KernelClass::kSyevd, KernelClass::kPseudopotential,
        KernelClass::kAlltoall, KernelClass::kOther}) {
    const KernelEfficiency& eff = config.efficiency(cls);
    EXPECT_GT(eff.compute, 0.0);
    EXPECT_LE(eff.compute, 1.0);
    EXPECT_GT(eff.memory, 0.0);
    EXPECT_LE(eff.memory, 1.0);
  }
}

TEST(GpuModelTest, LaunchOverheadIncluded) {
  GpuConfig config = GpuConfig::dgx1_v100x2();
  config.kernel_launch_ps = 123456;
  const GpuModel model(config);
  const GpuStepTime t = model.execute(KernelClass::kOther, 0, 0, 0, 0);
  EXPECT_EQ(t.kernel, 123456u);
}

TEST(GpuModelTest, GemmEfficiencyIsSmallForTallSkinny) {
  // Calibration guard: the tall-skinny response GEMM must run at
  // single-digit percent of FP64 peak (see DESIGN.md).
  const GpuConfig config = GpuConfig::dgx1_v100x2();
  EXPECT_LT(config.gemm.compute, 0.10);
  EXPECT_GT(config.gemm.compute, 0.01);
}

}  // namespace
}  // namespace ndft::gpu
