#pragma once
// Minimal JSON document model used for machine-consumable output
// (JobResult serialization, BENCH_*.json emitters) and for reading it
// back (round-trip tests, result ingestion). No external dependencies.
//
// Design points:
//  - Objects preserve insertion order, so serialization is deterministic:
//    the same value always dumps to the same string.
//  - Numbers keep their arithmetic kind (int64 / uint64 / double) so
//    64-bit counters (TimePs, Bytes, Flops) survive a round trip exactly.
//    Doubles are printed with %.17g, enough digits to reparse bit-exactly;
//    non-finite doubles (no JSON spelling) are written as null and read
//    back as NaN.
//  - parse() accepts exactly what dump() produces plus ordinary JSON
//    (whitespace, escapes, nested containers); malformed input throws
//    NdftError with a byte offset.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ndft {

/// One JSON value: null, bool, number, string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(long value) : type_(Type::kInt), int_(value) {}
  Json(long long value) : type_(Type::kInt), int_(value) {}
  Json(unsigned value) : type_(Type::kUint), uint_(value) {}
  Json(unsigned long value) : type_(Type::kUint), uint_(value) {}
  Json(unsigned long long value) : type_(Type::kUint), uint_(value) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  /// Empty array / object values (distinct from null).
  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; throw NdftError on kind mismatch. The numeric
  /// accessors convert freely between the three number kinds (with a
  /// range check for the integer ones). as_double() additionally reads
  /// null as NaN: JSON has no non-finite numbers, so the writer emits
  /// null for NaN/Inf and this keeps such documents ingestible.
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;

  // ---- array interface.
  void push_back(Json value);
  std::size_t size() const noexcept { return array_.size(); }
  const Json& operator[](std::size_t index) const;
  const std::vector<Json>& items() const;

  // ---- object interface (insertion-ordered; set() replaces in place).
  void set(const std::string& key, Json value);
  bool has(const std::string& key) const noexcept;
  /// Member lookup; throws NdftError when the key is absent.
  const Json& at(const std::string& key) const;
  /// Member lookup; nullptr when absent.
  const Json* find(const std::string& key) const noexcept;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serializes the value. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form.
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). Throws NdftError on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace ndft
