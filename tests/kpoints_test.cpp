// Tests for the k-point machinery: primitive cell, high-symmetry paths,
// Monkhorst-Pack grids and the silicon band structure's known features.

#include <gtest/gtest.h>

#include <cmath>

#include "dft/kpoints.hpp"

namespace ndft::dft {
namespace {

constexpr double kEvPerHa = 27.211386;

TEST(PrimitiveCellTest, TwoAtomsAndFccVolume) {
  const Crystal primitive = silicon_primitive();
  EXPECT_EQ(primitive.atom_count(), 2u);
  const double a0 = kSiliconLatticeBohr;
  EXPECT_NEAR(primitive.volume(), a0 * a0 * a0 / 4.0, 1e-6);
}

TEST(PrimitiveCellTest, SameBondLengthAsSupercell) {
  const Crystal primitive = silicon_primitive();
  const auto& pos = primitive.positions();
  const double bond = std::sqrt((pos[0] - pos[1]).norm2());
  EXPECT_NEAR(bond, std::sqrt(3.0) / 4.0 * kSiliconLatticeBohr, 1e-9);
}

TEST(KPathTest, LabelsAndLegStructure) {
  const std::vector<KPoint> path = fcc_kpath(kSiliconLatticeBohr, 5);
  EXPECT_EQ(path.size(), 4u * 5 + 1);
  EXPECT_EQ(path.front().label, "L");
  EXPECT_EQ(path.back().label, "Gamma");
  unsigned labelled = 0;
  for (const KPoint& kp : path) {
    if (!kp.label.empty()) ++labelled;
  }
  EXPECT_EQ(labelled, 5u);  // L, Gamma, X, K, Gamma
}

TEST(KPathTest, GammaIsAtOrigin) {
  const std::vector<KPoint> path = fcc_kpath(kSiliconLatticeBohr, 4);
  for (const KPoint& kp : path) {
    if (kp.label == "Gamma") {
      EXPECT_NEAR(kp.k.norm2(), 0.0, 1e-18);
    }
    if (kp.label == "X") {
      const double unit = 2.0 * std::numbers::pi / kSiliconLatticeBohr;
      EXPECT_NEAR(std::sqrt(kp.k.norm2()), unit, 1e-9);
    }
  }
}

TEST(MonkhorstPackTest, WeightsSumToOne) {
  const Crystal primitive = silicon_primitive();
  const auto grid = monkhorst_pack(primitive, 3, 3, 3);
  EXPECT_EQ(grid.size(), 27u);
  double total = 0.0;
  for (const KPoint& kp : grid) total += kp.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MonkhorstPackTest, EvenGridAvoidsGamma) {
  const Crystal primitive = silicon_primitive();
  for (const KPoint& kp : monkhorst_pack(primitive, 2, 2, 2)) {
    EXPECT_GT(kp.k.norm2(), 1e-12);  // MP even grids exclude Gamma
  }
}

class BandStructureFixture : public ::testing::Test {
 protected:
  BandStructureFixture()
      : primitive(silicon_primitive()), basis(primitive, 4.5) {}

  Crystal primitive;
  PlaneWaveBasis basis;  // 9 Ry: the classic EPM cutoff
};

TEST_F(BandStructureFixture, GammaMatchesGammaOnlySolver) {
  KPoint gamma;
  const BandsAtK at_gamma = solve_epm_at_k(basis, gamma, 8);
  const GroundState reference = solve_epm(basis, 8);
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_NEAR(at_gamma.energies_ha[b], reference.energies_ha[b], 1e-10);
  }
}

TEST_F(BandStructureFixture, BandsAreContinuousAlongPath) {
  const auto path = fcc_kpath(kSiliconLatticeBohr, 8);
  const auto structure = band_structure(basis, path, 6);
  for (std::size_t i = 1; i < structure.size(); ++i) {
    for (std::size_t b = 0; b < 6; ++b) {
      const double jump = std::fabs(structure[i].energies_ha[b] -
                                    structure[i - 1].energies_ha[b]);
      EXPECT_LT(jump * kEvPerHa, 2.5)
          << "band " << b << " jumps at point " << i;
    }
  }
}

TEST_F(BandStructureFixture, SiliconGapsMatchCohenBergstresser) {
  const auto path = fcc_kpath(kSiliconLatticeBohr, 10);
  const auto structure = band_structure(basis, path, 6);
  const GapSummary gap = find_gap(structure, 4);
  // Indirect gap ~0.8-1.2 eV with the CBM away from Gamma.
  EXPECT_GT(gap.indirect_gap_ev(), 0.5);
  EXPECT_LT(gap.indirect_gap_ev(), 1.6);
  EXPECT_EQ(gap.vbm_label, "Gamma");
  EXPECT_NE(gap.cbm_label, "Gamma");
  // Direct gap at Gamma ~3.4 eV.
  for (const BandsAtK& at_k : structure) {
    if (at_k.kpoint.label == "Gamma") {
      const double direct =
          (at_k.energies_ha[4] - at_k.energies_ha[3]) * kEvPerHa;
      EXPECT_GT(direct, 2.8);
      EXPECT_LT(direct, 4.0);
    }
  }
}

TEST_F(BandStructureFixture, ValenceTopIsTripleDegenerateAtGamma) {
  // Diamond structure: the Gamma_25' valence top is threefold degenerate.
  KPoint gamma;
  const BandsAtK at_gamma = solve_epm_at_k(basis, gamma, 6);
  const double top = at_gamma.energies_ha[3];
  EXPECT_NEAR(at_gamma.energies_ha[2], top, 1e-6);
  EXPECT_NEAR(at_gamma.energies_ha[1], top, 1e-6);
  EXPECT_LT(at_gamma.energies_ha[0], top - 0.2);  // Gamma_1 far below
}

TEST_F(BandStructureFixture, MpGridGapMatchesPathGap) {
  // A coarse MP grid sees roughly the same indirect gap as the path scan.
  const auto grid = monkhorst_pack(primitive, 4, 4, 4);
  std::vector<BandsAtK> solved;
  for (const KPoint& kp : grid) {
    solved.push_back(solve_epm_at_k(basis, kp, 6));
  }
  const GapSummary gap = find_gap(solved, 4);
  EXPECT_GT(gap.indirect_gap_ev(), 0.3);
  EXPECT_LT(gap.indirect_gap_ev(), 2.0);
}

TEST(FindGapTest, RejectsDegenerateInput) {
  EXPECT_THROW(find_gap({}, 4), NdftError);
  BandsAtK only_valence;
  only_valence.energies_ha = {1.0, 2.0};
  EXPECT_THROW(find_gap({only_valence}, 2), NdftError);
}

}  // namespace
}  // namespace ndft::dft
