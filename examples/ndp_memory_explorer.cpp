// Explores the NDP memory system interactively from code: stack-local
// versus CPU-port access latencies, the Table II shared-memory API, the
// hierarchical communication filter, and the pseudopotential footprint
// story across layouts and system sizes.
//
//   ./ndp_memory_explorer

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"
#include "runtime/shared_memory.hpp"

using namespace ndft;

namespace {

/// One timed request against a memory port.
TimePs timed_read(sim::EventQueue& queue, mem::MemoryPort& port, Addr addr) {
  TimePs done = 0;
  mem::MemRequest req;
  req.addr = addr;
  req.size = 64;
  req.on_complete = [&done](TimePs at) { done = at; };
  const TimePs start = queue.now();
  port.access(std::move(req));
  queue.run();
  return done - start;
}

}  // namespace

int main() {
  // --- 1. The latency asymmetry that motivates NDP.
  {
    sim::EventQueue queue;
    ndp::NdpSystem ndp("ndp", queue, ndp::NdpSystemConfig::table3());
    std::printf("=== access latency: stack-local vs CPU port ===\n");
    const TimePs local = timed_read(queue, ndp.stack(5).dram(), 0);
    TextTable table({"path", "latency"});
    table.add_row({"NDP core -> local stack DRAM", format_time(local)});
    for (const Addr addr : {Addr{0}, Addr{5 * 64}, Addr{10 * 64}}) {
      const unsigned stack = static_cast<unsigned>((addr / 64) % 16);
      table.add_row({strformat("CPU -> stack %u (SerDes + mesh)", stack),
                     format_time(timed_read(queue, ndp.cpu_port(), addr))});
    }
    std::printf("%s\n", table.render().c_str());
  }

  // --- 2. The Table II API in action: owner writes, peers read.
  {
    sim::EventQueue queue;
    ndp::NdpSystem ndp("ndp", queue, ndp::NdpSystemConfig::table3());
    runtime::SharedMemoryManager shm("shm", queue, ndp,
                                     runtime::SharedMemoryConfig{});
    std::printf("=== NDFT shared-memory API (Table II) ===\n");
    const runtime::SharedBlock block = shm.alloc_shared(64 * 1024, 0);
    std::printf("NDFT_Alloc_Shared: block %u, owner stack %u, %s\n",
                block.id, block.owner_stack,
                block.in_spm ? "resident in SPM" : "spilled to stack DRAM");

    TimePs done = 0;
    shm.write(block, 64 * 1024, [&done](TimePs at) { done = at; });
    queue.run();
    std::printf("NDFT_Write (owner fills the block): %s\n",
                format_time(done).c_str());

    const auto remote_read = [&](unsigned stack) {
      TimePs start = queue.now();
      TimePs at = 0;
      shm.read_remote(block, 64 * 1024, stack,
                      [&at](TimePs t) { at = t; });
      queue.run();
      return at - start;
    };
    std::printf("NDFT_Read_Remote from stack 15 (cold):   %s\n",
                format_time(remote_read(15)).c_str());
    std::printf("NDFT_Read_Remote from stack 15 (staged): %s\n",
                format_time(remote_read(15)).c_str());
    std::printf("filter: %llu staging hits, %llu misses; mesh carried %s\n\n",
                static_cast<unsigned long long>(shm.staging_hits()),
                static_cast<unsigned long long>(shm.staging_misses()),
                format_bytes(shm.inter_stack_bytes()).c_str());
  }

  // --- 3. Pseudopotential footprints across layouts (the OOM story).
  {
    std::printf("=== pseudopotential footprint vs layout ===\n");
    const core::NdftSystem system;
    TextTable table({"system", "CPU (24 replicas)", "NDP (64 replicas)",
                     "NDP shared blocks", "NDFT hybrid"});
    for (const std::size_t atoms : {64, 256, 1024, 2048}) {
      const dft::Workload w = system.workload_for(atoms);
      const runtime::PseudoStore store(w, system.config().processes);
      const Bytes cap = system.config().ndp_capacity;
      const auto fmt = [&](const runtime::PseudoFootprint& f) {
        return strformat("%s%s", format_bytes(f.total).c_str(),
                         f.out_of_memory() ? " (OOM!)" : "");
      };
      table.add_row({strformat("Si_%zu", atoms),
                     fmt(store.on_cpu(cap)),
                     fmt(store.on_ndp(runtime::PseudoLayout::kReplicated,
                                      cap)),
                     fmt(store.on_ndp(runtime::PseudoLayout::kSharedBlock,
                                      cap)),
                     fmt(store.on_ndft(cap))});
    }
    std::printf("%s", table.render().c_str());
  }
  return 0;
}
