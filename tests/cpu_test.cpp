// Unit and property tests for the trace generator and the trace-driven
// core/complex timing models.

#include <gtest/gtest.h>

#include <set>

#include "cpu/cpu_complex.hpp"
#include "cpu/trace_gen.hpp"
#include "mem/dram_system.hpp"
#include "sim/event_queue.hpp"

namespace ndft::cpu {
namespace {

/// Instant-response memory: completes every request after a fixed latency.
class FixedLatencyMemory : public mem::MemoryPort {
 public:
  FixedLatencyMemory(sim::EventQueue& queue, TimePs latency)
      : queue_(&queue), latency_(latency) {}

  void access(mem::MemRequest req) override {
    ++requests;
    if (req.on_complete) {
      auto cb = std::move(req.on_complete);
      queue_->schedule_after(latency_, [cb = std::move(cb), this] {
        cb(queue_->now());
      });
    }
  }

  unsigned requests = 0;

 private:
  sim::EventQueue* queue_;
  TimePs latency_;
};

// ---------------------------------------------------------------- traces

TEST(TraceGenTest, PureComputeKernel) {
  TraceParams params;
  params.flops = 1000;
  params.bytes_read = 0;
  params.bytes_written = 0;
  const Trace trace = generate_trace(params);
  ASSERT_EQ(trace.ops.size(), 1u);
  EXPECT_EQ(trace.ops[0].kind, OpKind::kCompute);
  EXPECT_EQ(trace.total_flops(), 1000u);
  EXPECT_DOUBLE_EQ(trace.scale, 1.0);
}

TEST(TraceGenTest, SamplingPreservesArithmeticIntensity) {
  TraceParams params;
  params.flops = 1u << 24;
  params.bytes_read = 1u << 26;
  params.bytes_written = 1u << 24;
  params.max_mem_ops = 5000;
  const Trace trace = generate_trace(params);
  const double requested_ai =
      static_cast<double>(params.flops) /
      static_cast<double>(params.bytes_read + params.bytes_written);
  const double sampled_ai = static_cast<double>(trace.total_flops()) /
                            static_cast<double>(trace.total_bytes());
  EXPECT_NEAR(sampled_ai, requested_ai, requested_ai * 0.02);
}

TEST(TraceGenTest, ScaleTimesSampleEqualsRequested) {
  TraceParams params;
  params.bytes_read = 10'000'000;
  params.bytes_written = 0;
  params.max_mem_ops = 1000;
  const Trace trace = generate_trace(params);
  const double reconstructed =
      trace.scale * static_cast<double>(trace.total_bytes());
  EXPECT_NEAR(reconstructed, 10'000'000.0, 700000.0);
}

TEST(TraceGenTest, SequentialAddressesAreContiguous) {
  TraceParams params;
  params.bytes_read = 64 * 100;
  params.working_set = 64 * 1000;
  params.pattern = AccessPattern::kSequential;
  params.base_addr = 1 << 20;
  const Trace trace = generate_trace(params);
  Addr expected = params.base_addr;
  for (const TraceOp& op : trace.ops) {
    if (op.kind == OpKind::kCompute) continue;
    EXPECT_EQ(op.addr, expected);
    expected += 64;
  }
}

TEST(TraceGenTest, StridedUsesRequestedStride) {
  TraceParams params;
  params.bytes_read = 64 * 50;
  params.working_set = 1 << 20;
  params.pattern = AccessPattern::kStrided;
  params.stride_bytes = 1024;
  const Trace trace = generate_trace(params);
  Addr previous = 0;
  bool first = true;
  for (const TraceOp& op : trace.ops) {
    if (op.kind == OpKind::kCompute) continue;
    if (!first) {
      EXPECT_EQ(op.addr - previous, 1024u);
    }
    first = false;
    previous = op.addr;
  }
}

TEST(TraceGenTest, RandomStaysInWorkingSet) {
  TraceParams params;
  params.bytes_read = 64 * 500;
  params.working_set = 1 << 16;
  params.pattern = AccessPattern::kRandom;
  params.base_addr = 1 << 24;
  const Trace trace = generate_trace(params);
  for (const TraceOp& op : trace.ops) {
    if (op.kind == OpKind::kCompute) continue;
    EXPECT_GE(op.addr, params.base_addr);
    EXPECT_LT(op.addr, params.base_addr + params.working_set);
  }
}

TEST(TraceGenTest, BlockedPatternRevisitsTiles) {
  TraceParams params;
  params.bytes_read = 64 * 4096;  // 4 sweeps of a 64 KiB working set
  params.working_set = 64 * 1024;
  params.pattern = AccessPattern::kBlocked;
  params.block_bytes = 16 * 1024;
  const Trace trace = generate_trace(params);
  std::set<Addr> unique;
  unsigned mem_ops = 0;
  for (const TraceOp& op : trace.ops) {
    if (op.kind == OpKind::kCompute) continue;
    unique.insert(op.addr);
    ++mem_ops;
  }
  // Reuse factor 4: unique addresses are ~1/4 of accesses.
  EXPECT_LT(unique.size() * 3, mem_ops);
}

TEST(TraceGenTest, WritesBatchedAndProportional) {
  TraceParams params;
  params.bytes_read = 64 * 800;
  params.bytes_written = 64 * 800;  // 50 % writes
  params.working_set = 1 << 20;
  const Trace trace = generate_trace(params);
  unsigned stores = 0;
  unsigned loads = 0;
  for (const TraceOp& op : trace.ops) {
    if (op.kind == OpKind::kStore) ++stores;
    if (op.kind == OpKind::kLoad) ++loads;
  }
  EXPECT_NEAR(static_cast<double>(stores) / (stores + loads), 0.5, 0.05);
}

TEST(TraceGenTest, RejectsBadParams) {
  TraceParams params;
  params.access_bytes = 0;
  EXPECT_THROW(generate_trace(params), NdftError);
  params.access_bytes = 128;
  EXPECT_THROW(generate_trace(params), NdftError);
}

// ----------------------------------------------------------------- cores

TEST(CoreTest, ComputeBoundTimeMatchesPeakRate) {
  sim::EventQueue queue;
  FixedLatencyMemory memory(queue, 1000);
  CoreConfig config;
  config.freq_mhz = 1000;       // 1 ns cycle
  config.flops_per_cycle = 4.0;
  Core core("c", queue, config, memory);

  Trace trace;
  TraceOp op;
  op.kind = OpKind::kCompute;
  op.flops = 4000;  // 1000 cycles = 1 us
  trace.ops.push_back(op);

  bool done = false;
  core.run_trace(&trace, [&] { done = true; });
  queue.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(queue.now(), 1000 * kPsPerNs);
}

TEST(CoreTest, MemoryLatencyBoundWithUnitMlp) {
  sim::EventQueue queue;
  FixedLatencyMemory memory(queue, 100000);  // 100 ns
  CoreConfig config;
  config.freq_mhz = 1000;
  config.max_outstanding = 1;  // serialise
  Core core("c", queue, config, memory);

  Trace trace;
  for (int i = 0; i < 10; ++i) {
    TraceOp op;
    op.kind = OpKind::kLoad;
    op.addr = Addr(i) * 64;
    op.size = 64;
    trace.ops.push_back(op);
  }
  core.run_trace(&trace, [] {});
  queue.run();
  // 10 serialised loads of 100 ns each.
  EXPECT_GE(queue.now(), 10 * 100000u);
  EXPECT_LT(queue.now(), 11 * 100000u);
}

TEST(CoreTest, MlpOverlapsMisses) {
  const auto run_with_mlp = [](unsigned mlp) {
    sim::EventQueue queue;
    FixedLatencyMemory memory(queue, 100000);
    CoreConfig config;
    config.freq_mhz = 1000;
    config.max_outstanding = mlp;
    Core core("c", queue, config, memory);
    Trace trace;
    for (int i = 0; i < 32; ++i) {
      TraceOp op;
      op.kind = OpKind::kLoad;
      op.addr = Addr(i) * 64;
      op.size = 64;
      trace.ops.push_back(op);
    }
    core.run_trace(&trace, [] {});
    queue.run();
    return queue.now();
  };
  const TimePs serial = run_with_mlp(1);
  const TimePs parallel = run_with_mlp(8);
  EXPECT_GT(serial, parallel * 6);  // ~8x overlap
}

TEST(CoreTest, RejectsConcurrentTraces) {
  sim::EventQueue queue;
  FixedLatencyMemory memory(queue, 1000);
  Core core("c", queue, CoreConfig{}, memory);
  Trace trace;
  TraceOp op;
  op.kind = OpKind::kLoad;
  trace.ops.push_back(op);
  core.run_trace(&trace, [] {});
  EXPECT_TRUE(core.busy());
  EXPECT_THROW(core.run_trace(&trace, [] {}), NdftError);
  queue.run();
  EXPECT_FALSE(core.busy());
}

TEST(CoreTest, CountersTrackWork) {
  sim::EventQueue queue;
  FixedLatencyMemory memory(queue, 1000);
  Core core("c", queue, CoreConfig{}, memory);
  Trace trace;
  TraceOp compute;
  compute.kind = OpKind::kCompute;
  compute.flops = 64;
  trace.ops.push_back(compute);
  TraceOp load;
  load.kind = OpKind::kLoad;
  load.size = 64;
  trace.ops.push_back(load);
  TraceOp store;
  store.kind = OpKind::kStore;
  store.size = 64;
  trace.ops.push_back(store);
  core.run_trace(&trace, [] {});
  queue.run();
  EXPECT_EQ(core.counters().loads, 1u);
  EXPECT_EQ(core.counters().stores, 1u);
  EXPECT_DOUBLE_EQ(core.counters().flops, 64.0);
  EXPECT_DOUBLE_EQ(core.counters().mem_bytes, 128.0);
}

TEST(CoreConfigTest, PaperPresets) {
  EXPECT_NEAR(CoreConfig::xeon_core().peak_gflops(), 38.4, 0.1);
  EXPECT_NEAR(CoreConfig::host_core().peak_gflops(), 96.0, 0.1);
  EXPECT_NEAR(CoreConfig::ndp_core().peak_gflops(), 1.6, 0.05);
}

// --------------------------------------------------------------- complex

TEST(CpuComplexTest, BarrierWaitsForAllCores) {
  sim::EventQueue queue;
  mem::DramSystem dram("d", queue, mem::DramConfig::xeon_ddr4());
  CpuComplexConfig config = CpuComplexConfig::xeon_baseline();
  config.cores = 4;
  CpuComplex complex("cpu", queue, config, dram);

  // Core 0 gets much more work than the others.
  std::vector<Trace> traces(4);
  for (unsigned c = 0; c < 4; ++c) {
    const int ops = (c == 0) ? 400 : 10;
    for (int i = 0; i < ops; ++i) {
      TraceOp op;
      op.kind = OpKind::kLoad;
      op.addr = Addr(c) * (1 << 20) + Addr(i) * 64;
      op.size = 64;
      traces[c].ops.push_back(op);
    }
  }
  std::vector<const Trace*> ptrs{&traces[0], &traces[1], &traces[2],
                                 &traces[3]};
  bool done = false;
  complex.run(ptrs, [&] { done = true; });
  queue.run();
  EXPECT_TRUE(done);
  EXPECT_GT(complex.core(0).counters().loads, 300u);
}

TEST(CpuComplexTest, RejectsTooManyTraces) {
  sim::EventQueue queue;
  mem::DramSystem dram("d", queue, mem::DramConfig::xeon_ddr4());
  CpuComplexConfig config = CpuComplexConfig::xeon_baseline();
  config.cores = 2;
  CpuComplex complex("cpu", queue, config, dram);
  Trace trace;
  std::vector<const Trace*> ptrs{&trace, &trace, &trace};
  EXPECT_THROW(complex.run(ptrs, [] {}), NdftError);
}

TEST(CpuComplexTest, ConfigPresetsMatchPaper) {
  const CpuComplexConfig host = CpuComplexConfig::table3_host();
  EXPECT_EQ(host.cores, 8u);
  EXPECT_EQ(host.core.freq_mhz, 3000u);
  const CpuComplexConfig xeon = CpuComplexConfig::xeon_baseline();
  EXPECT_EQ(xeon.cores, 24u);
  EXPECT_EQ(xeon.core.freq_mhz, 2400u);
  EXPECT_NEAR(xeon.peak_gflops(), 921.6, 1.0);
}

TEST(CpuComplexTest, InvalidateCachesDropsState) {
  sim::EventQueue queue;
  mem::DramSystem dram("d", queue, mem::DramConfig::xeon_ddr4());
  CpuComplexConfig config = CpuComplexConfig::xeon_baseline();
  config.cores = 1;
  CpuComplex complex("cpu", queue, config, dram);

  Trace trace;
  for (int i = 0; i < 16; ++i) {
    TraceOp op;
    op.kind = OpKind::kLoad;
    op.addr = Addr(i) * 64;
    op.size = 64;
    trace.ops.push_back(op);
  }
  std::vector<const Trace*> ptrs{&trace};
  complex.run(ptrs, [] {});
  queue.run();
  complex.invalidate_caches();

  // Re-running the same trace misses everything again: DRAM sees fills.
  const Bytes before = dram.bytes_transferred();
  complex.run(ptrs, [] {});
  queue.run();
  EXPECT_GT(dram.bytes_transferred(), before);
}

}  // namespace
}  // namespace ndft::cpu
