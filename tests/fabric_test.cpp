// Tests for the port/connection fabric and the machine-config plumbing
// built on top of it: credit-based back-pressure, bitwise determinism
// across component construction orders, the "ndft.machine.v1" document
// (strict parsing, the shipped Table-III example, fuzzing the Engine with
// malformed documents), and the simulator-trace -> calibrate -> profile
// store -> plan round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "api/job.hpp"
#include "api/result.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/kernel_trace.hpp"
#include "ndp/ndp_system.hpp"
#include "runtime/adaptive.hpp"
#include "runtime/device_profile.hpp"
#include "runtime/profile_store.hpp"
#include "sim/event_queue.hpp"
#include "sim/port.hpp"
#include "sim/stats.hpp"

namespace ndft {
namespace {

using api::Engine;
using api::EngineConfig;
using api::JobResult;
using api::JobStatus;
using sim::Connection;
using sim::CreditedSender;
using sim::Delivery;
using sim::EventQueue;
using sim::InputPort;
using sim::LinkConfig;
using sim::OutputPort;
using sim::StatSet;

// ---------------------------------------------------------------------------
// Wire timing.

TEST(ConnectionTest, CutThroughAndStoreForwardTiming) {
  EventQueue queue;
  StatSet stats;
  LinkConfig config;
  config.latency_ps = 100;
  config.gbps = 8.0;
  config.capacity = 4;
  const TimePs ser = transfer_time_ps(64, config.gbps);
  ASSERT_GT(ser, 0u);

  config.delivery = Delivery::kCutThrough;
  Connection<int> cut(queue, config, &stats);
  EXPECT_EQ(cut.send(1, 64), 100u);  // start 0 + latency
  // Second message waits for the wire: start = ser, arrival = ser + 100.
  EXPECT_EQ(cut.send(2, 64), ser + 100);
  // The wait shows up as wire contention, not a credit stall.
  EXPECT_DOUBLE_EQ(stats.get("contention_ps"), static_cast<double>(ser));

  config.delivery = Delivery::kStoreForward;
  Connection<int> sf(queue, config, &stats);
  EXPECT_EQ(sf.send(1, 64), ser + 100);  // serialization + latency
}

TEST(ConnectionTest, UntimedWireDeliversInline) {
  EventQueue queue;
  LinkConfig config;  // latency 0, gbps 0
  Connection<int> wire(queue, config, nullptr);
  bool seen = false;
  wire.on_receive([&] { seen = true; });
  wire.send(7, 64);
  EXPECT_TRUE(seen);  // delivered synchronously, no event needed
  EXPECT_EQ(wire.pop(), 7);
}

// ---------------------------------------------------------------------------
// Back-pressure: a burst through a small link stays bounded in-network
// while the staging FIFO absorbs (and accounts) the overflow.

/// A consumer that needs `service_ps` per message: the bottleneck that
/// makes the producer feel back-pressure.
struct SlowSink {
  EventQueue* queue = nullptr;
  InputPort<int> in;
  TimePs service_ps = 0;
  bool busy = false;
  std::vector<std::pair<TimePs, int>> got;

  void pump() {
    if (busy || in.empty()) return;
    busy = true;
    queue->schedule_after(service_ps, [this] {
      got.emplace_back(queue->now(), in.pop());
      busy = false;
      pump();
    });
  }
};

TEST(ConnectionTest, BackPressureBoundsQueueAndAccountsStalls) {
  EventQueue queue;
  StatSet stats;
  LinkConfig config;
  config.latency_ps = 10;
  config.capacity = 2;  // tiny in-network buffer
  Connection<int> link(queue, config, &stats);

  SlowSink sink;
  sink.queue = &queue;
  sink.in.bind(link);
  sink.service_ps = 500;
  sink.in.on_receive([&] { sink.pump(); });

  OutputPort<int> out(link);
  CreditedSender<int> sender(queue, out, &stats);
  constexpr int kBurst = 12;
  for (int i = 0; i < kBurst; ++i) {
    sender.push(i, 64);
  }
  // Only `capacity` messages fit in flight; the rest stage at the sender.
  EXPECT_EQ(sender.staged(), static_cast<std::size_t>(kBurst) - 2);
  queue.run();

  // Everything arrived, in order, and the in-network queue stayed within
  // the credit bound the whole time.
  ASSERT_EQ(sink.got.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) {
    EXPECT_EQ(sink.got[static_cast<std::size_t>(i)].second, i);
  }
  EXPECT_EQ(sender.staged(), 0u);
  EXPECT_LE(stats.get("queue_peak"), 2.0);
  // The stall is observable: 10 messages staged, each waiting on the
  // 500 ps service loop downstream.
  EXPECT_DOUBLE_EQ(stats.get("backpressure_stalls"),
                   static_cast<double>(kBurst - 2));
  EXPECT_DOUBLE_EQ(stats.get("staged_peak"),
                   static_cast<double>(kBurst - 2));
  EXPECT_GT(stats.get("backpressure_stall_ps"), 0.0);
}

TEST(ConnectionTest, ManualCreditHoldsUntilReturned) {
  EventQueue queue;
  LinkConfig config;
  config.capacity = 1;
  config.manual_credit = true;
  Connection<int> link(queue, config, nullptr);
  link.send(1, 0);
  queue.run();
  EXPECT_EQ(link.pop(), 1);
  EXPECT_FALSE(link.can_send());  // pop() did not return the credit
  link.return_credit();
  EXPECT_TRUE(link.can_send());
}

// ---------------------------------------------------------------------------
// Determinism: the fabric schedules events only when traffic flows, so
// results do not depend on the order components were constructed in.

struct FabricRun {
  std::vector<std::pair<TimePs, int>> log;
  std::map<std::string, double> stats;
};

/// Two producer->sink lanes sharing one event queue, with same-timestamp
/// traffic on both. `a_first` flips which lane's components are built
/// first; the observable behaviour must not change.
FabricRun run_two_lane_fabric(bool a_first) {
  EventQueue queue;
  StatSet stats;
  LinkConfig config;
  config.latency_ps = 50;
  config.capacity = 2;

  std::unique_ptr<Connection<int>> a;
  std::unique_ptr<Connection<int>> b;
  if (a_first) {
    a = std::make_unique<Connection<int>>(queue, config, &stats);
    b = std::make_unique<Connection<int>>(queue, config, &stats);
  } else {
    b = std::make_unique<Connection<int>>(queue, config, &stats);
    a = std::make_unique<Connection<int>>(queue, config, &stats);
  }

  FabricRun run;
  SlowSink sink_a;
  sink_a.queue = &queue;
  sink_a.in.bind(*a);
  sink_a.service_ps = 30;
  SlowSink sink_b;
  sink_b.queue = &queue;
  sink_b.in.bind(*b);
  sink_b.service_ps = 30;
  sink_a.in.on_receive([&] { sink_a.pump(); });
  sink_b.in.on_receive([&] { sink_b.pump(); });

  OutputPort<int> out_a(*a);
  OutputPort<int> out_b(*b);
  CreditedSender<int> send_a(queue, out_a, &stats);
  CreditedSender<int> send_b(queue, out_b, &stats);
  // Same-timestamp bursts on both lanes, issued in a fixed program order.
  for (int wave = 0; wave < 3; ++wave) {
    queue.schedule_at(static_cast<TimePs>(wave * 100), [&, wave] {
      for (int i = 0; i < 4; ++i) {
        send_a.push(wave * 10 + i, 64);
        send_b.push(wave * 10 + i + 100, 64);
      }
    });
  }
  queue.run();

  for (const auto& [t, v] : sink_a.got) run.log.emplace_back(t, v);
  for (const auto& [t, v] : sink_b.got) run.log.emplace_back(t, v);
  run.stats = stats.snapshot();
  return run;
}

TEST(ConnectionTest, SameTimestampFifoAcrossConstructionOrders) {
  const FabricRun forward = run_two_lane_fabric(true);
  const FabricRun reversed = run_two_lane_fabric(false);
  EXPECT_EQ(forward.log, reversed.log);
  EXPECT_EQ(forward.stats, reversed.stats);
  EXPECT_EQ(forward.log.size(), 24u);  // 2 lanes x 3 waves x 4 messages
}

// ---------------------------------------------------------------------------
// "ndft.machine.v1" documents.

TEST(MachineConfigTest, Table3RoundTripsBitwise) {
  const ndp::NdpSystemConfig table3 = ndp::NdpSystemConfig::table3();
  const Json doc = table3.to_json();
  const ndp::NdpSystemConfig parsed = ndp::NdpSystemConfig::from_json(doc);
  EXPECT_EQ(parsed.to_json().dump(), doc.dump());
}

TEST(MachineConfigTest, UnknownKeysAreRejected) {
  Json doc = ndp::NdpSystemConfig::table3().to_json();
  doc.set("surprise", Json(1));
  EXPECT_THROW(ndp::NdpSystemConfig::from_json(doc), NdftError);

  Json nested = ndp::NdpSystemConfig::table3().to_json();
  Json mesh = *nested.find("mesh");
  mesh.set("bogus", Json(2));
  nested.set("mesh", mesh);
  EXPECT_THROW(ndp::NdpSystemConfig::from_json(nested), NdftError);
}

TEST(MachineConfigTest, SchemaIsRequired) {
  Json doc = ndp::NdpSystemConfig::table3().to_json();
  doc.set("schema", Json("ndft.machine.v999"));
  EXPECT_THROW(ndp::NdpSystemConfig::from_json(doc), NdftError);
}

TEST(MachineConfigTest, ExampleFileMatchesBuiltinTable3) {
  const std::string path =
      std::string(NDFT_SOURCE_DIR) + "/examples/machines/table3.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  const ndp::NdpSystemConfig parsed = ndp::NdpSystemConfig::from_json(doc);
  // The shipped example IS the builtin Table-III machine: simulating it
  // reproduces the paper numbers exactly (tolerance 0, by construction).
  EXPECT_EQ(parsed.to_json().dump(),
            ndp::NdpSystemConfig::table3().to_json().dump());
}

// ---------------------------------------------------------------------------
// Fuzzing the Engine with malformed machine documents: every one is a
// clean kInvalid refusal, and the engine's observable state afterwards is
// bitwise identical to an engine that never saw them.

/// The result fields that must be bitwise stable across runs (wall-clock
/// timings and engine/job ids naturally differ).
Json normalized(JobResult result) {
  result.timings = {};
  result.engine = {};
  return result.to_json();
}

std::vector<Json> malformed_machines() {
  const Json good = ndp::NdpSystemConfig::table3().to_json();
  std::vector<Json> bad;

  Json unknown_key = good;
  unknown_key.set("flux_capacitor", Json(88));
  bad.push_back(unknown_key);

  Json wrong_schema = good;
  wrong_schema.set("schema", Json("ndft.workload.v1"));
  bad.push_back(wrong_schema);

  Json wrong_type = good;
  Json mesh = *good.find("mesh");
  mesh.set("width", Json("wide"));
  wrong_type.set("mesh", mesh);
  bad.push_back(wrong_type);

  Json zero_mesh = good;
  Json mesh0 = *good.find("mesh");
  mesh0.set("width", Json(0));
  zero_mesh.set("mesh", mesh0);
  bad.push_back(zero_mesh);

  Json bad_policy = good;
  Json stack = *good.find("stack");
  Json dram = *stack.find("dram");
  dram.set("page_policy", Json("ajar"));
  stack.set("dram", dram);
  bad_policy.set("stack", stack);
  bad.push_back(bad_policy);

  Json zero_queue = good;
  Json stack2 = *good.find("stack");
  Json dram2 = *stack2.find("dram");
  dram2.set("queue_depth", Json(0));
  stack2.set("dram", dram2);
  zero_queue.set("stack", stack2);
  bad.push_back(zero_queue);

  bad.push_back(Json("not an object"));
  bad.push_back(Json::array());
  return bad;
}

TEST(MachineFuzzTest, MalformedDocumentsAreInvalidWithoutStateLeak) {
  EngineConfig config;
  config.dispatch_threads = 0;
  Engine clean(config);   // never sees a malformed document
  Engine fuzzed(config);  // absorbs the whole fuzz corpus first

  for (const Json& doc : malformed_machines()) {
    api::SimulateJob job;
    job.atoms = 16;
    job.machine = doc;
    const JobResult result = fuzzed.run(job);
    EXPECT_EQ(result.status, JobStatus::kInvalid) << doc.dump();
    EXPECT_FALSE(result.error_details.empty()) << doc.dump();
    EXPECT_FALSE(result.simulate.has_value());
  }
  // Refusals happen at validation: nothing executed, nothing retried.
  EXPECT_EQ(fuzzed.jobs_started(), 0u);
  EXPECT_EQ(fuzzed.jobs_retried(), 0u);

  // The engine after the fuzz corpus behaves bitwise like one that never
  // saw it: zero state leakage from rejected documents.
  api::SimulateJob probe;
  probe.atoms = 16;
  const Json from_clean = normalized(clean.run(probe));
  const Json from_fuzzed = normalized(fuzzed.run(probe));
  EXPECT_EQ(from_clean.dump(), from_fuzzed.dump());
}

TEST(SimulateMachineTest, Table3DocumentReproducesDefaultMachine) {
  EngineConfig config;
  config.dispatch_threads = 0;
  Engine engine(config);

  api::SimulateJob plain;
  plain.atoms = 16;
  api::SimulateJob described;
  described.atoms = 16;
  described.machine = ndp::NdpSystemConfig::table3().to_json();

  const Json lhs = normalized(engine.run(plain));
  const Json rhs = normalized(engine.run(described));
  EXPECT_EQ(lhs.dump(), rhs.dump());
}

// ---------------------------------------------------------------------------
// Component statistics surface in the SimulatePayload.

TEST(SimulateStatsTest, BackPressureAndUtilizationObservableInPayload) {
  EngineConfig config;
  config.dispatch_threads = 0;
  Engine engine(config);

  api::SimulateJob job;
  job.atoms = 16;
  job.mode = core::ExecMode::kNdft;
  const JobResult result = engine.run(job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  ASSERT_TRUE(result.simulate.has_value());
  const auto& stats = result.simulate->stats;
  ASSERT_FALSE(stats.empty());
  // The roll-up exposes traffic, utilization and the back-pressure
  // accounting of the credit fabric.
  EXPECT_GT(stats.at("mesh.hops"), 0.0);
  EXPECT_GT(stats.at("dram.reads"), 0.0);
  EXPECT_GT(stats.at("dram.channel_utilization"), 0.0);

  // Shrinking the fabric queues through a machine document makes the
  // credit stalls observable in the same payload.
  Json machine = ndp::NdpSystemConfig::table3().to_json();
  Json mesh = *machine.find("mesh");
  mesh.set("link_queue", Json(1));
  machine.set("mesh", mesh);
  Json stack = *machine.find("stack");
  Json dram = *stack.find("dram");
  dram.set("queue_depth", Json(2));
  stack.set("dram", dram);
  machine.set("stack", stack);

  api::SimulateJob squeezed;
  squeezed.atoms = 16;
  squeezed.mode = core::ExecMode::kNdft;
  squeezed.machine = machine;
  const JobResult squeezed_result = engine.run(squeezed);
  ASSERT_EQ(squeezed_result.status, JobStatus::kOk);
  const auto& squeezed_stats = squeezed_result.simulate->stats;
  double stalls = 0.0;
  for (const char* key :
       {"mesh.backpressure_stalls", "serdes.backpressure_stalls",
        "dram.backpressure_stalls", "spm.backpressure_stalls"}) {
    const auto it = squeezed_stats.find(key);
    if (it != squeezed_stats.end()) stalls += it->second;
  }
  EXPECT_GT(stalls, 0.0) << "no back-pressure counter in payload stats";

  // The CPU baseline reports its own DRAM-side counters.
  api::SimulateJob cpu;
  cpu.atoms = 16;
  cpu.mode = core::ExecMode::kCpuBaseline;
  const JobResult cpu_result = engine.run(cpu);
  ASSERT_EQ(cpu_result.status, JobStatus::kOk);
  EXPECT_GT(cpu_result.simulate->stats.at("dram.channel_utilization"), 0.0);
}

// ---------------------------------------------------------------------------
// Simulator-emitted traces close the loop: simulate -> calibrate ->
// profile store -> plan.

TEST(TraceRoundTripTest, SimulatorTraceCalibratesStoresAndSeedsPlans) {
  const std::string store_path = "fabric_test_profile_store.json";
  std::remove(store_path.c_str());

  EngineConfig config;
  config.dispatch_threads = 0;
  config.profile_store_path = store_path;

  std::string plan_with_store;
  {
    Engine engine(config);

    // 1. Simulate the CPU baseline and record the simulator-emitted trace.
    api::SimulateJob sim;
    sim.atoms = 32;
    sim.mode = core::ExecMode::kCpuBaseline;
    sim.record_trace = true;
    const JobResult simulated = engine.run(sim);
    ASSERT_EQ(simulated.status, JobStatus::kOk);
    ASSERT_TRUE(simulated.trace.has_value());
    ASSERT_FALSE(simulated.trace->events.empty());
    for (const TraceEvent& event : simulated.trace->events) {
      EXPECT_EQ(event.stage, "sim[cpu]");
      EXPECT_GE(event.host_ms, 0.0);
    }

    // 2. Replay it through co-design: calibration fits the CPU roofline
    //    and persists the fitted profile into the store.
    api::CoDesignJob codesign;
    codesign.trace = *simulated.trace;
    codesign.simulate = false;
    const JobResult replayed = engine.run(codesign);
    ASSERT_EQ(replayed.status, JobStatus::kOk);
    ASSERT_TRUE(replayed.codesign.has_value());
    ASSERT_TRUE(replayed.codesign->calibration.calibrated);

    // 3. A plan on the same engine now defaults to the stored beliefs.
    api::PlanJob plan;
    plan.atoms = 32;
    const JobResult planned = engine.run(plan);
    ASSERT_EQ(planned.status, JobStatus::kOk);
    ASSERT_TRUE(planned.plan.has_value());
    EXPECT_TRUE(planned.plan->used_stored_profile);
    plan_with_store = normalized(planned).dump();
  }

  // 4. A brand-new engine (same store path) picks the profile up from
  //    disk: the calibrated beliefs survive across engine lifetimes.
  {
    Engine engine(config);
    api::PlanJob plan;
    plan.atoms = 32;
    const JobResult planned = engine.run(plan);
    ASSERT_EQ(planned.status, JobStatus::kOk);
    ASSERT_TRUE(planned.plan->used_stored_profile);
    EXPECT_EQ(normalized(planned).dump(), plan_with_store);
  }

  // 5. Without a store, the same plan keeps the Table-III defaults.
  {
    EngineConfig bare;
    bare.dispatch_threads = 0;
    Engine engine(bare);
    api::PlanJob plan;
    plan.atoms = 32;
    const JobResult planned = engine.run(plan);
    ASSERT_EQ(planned.status, JobStatus::kOk);
    EXPECT_FALSE(planned.plan->used_stored_profile);
  }

  // 6. An explicit profile override beats the store.
  {
    Engine engine(config);
    api::PlanJob plan;
    plan.atoms = 32;
    plan.profile_override = {runtime::DeviceProfile::table3_cpu(),
                             runtime::DeviceProfile::table3_ndp()};
    const JobResult planned = engine.run(plan);
    ASSERT_EQ(planned.status, JobStatus::kOk);
    EXPECT_FALSE(planned.plan->used_stored_profile);
  }

  std::remove(store_path.c_str());
}

TEST(AdaptiveTraceTest, RecordTraceDecodesStagesAndSkipsZeroTime) {
  const runtime::DeviceProfile cpu = runtime::DeviceProfile::table3_cpu();
  const runtime::DeviceProfile ndp = runtime::DeviceProfile::table3_ndp();
  const runtime::Sca sca(cpu, ndp);
  const runtime::CostModel cost(cpu, ndp);
  runtime::AdaptiveScheduler scheduler(sca, cost);

  KernelTrace trace;
  TraceEvent on_cpu;
  on_cpu.name = "fft_forward";
  on_cpu.stage = "sim[cpu]";
  on_cpu.host_ms = 2.0;
  TraceEvent on_ndp;
  on_ndp.name = "fft_forward";
  on_ndp.stage = "sim[ndp]";
  on_ndp.host_ms = 0.5;
  TraceEvent zero_time;
  zero_time.name = "noop";
  zero_time.stage = "sim[cpu]";
  zero_time.host_ms = 0.0;
  trace.events = {on_cpu, on_ndp, zero_time};

  EXPECT_EQ(scheduler.record_trace(trace), 2u);
  EXPECT_TRUE(scheduler.has_measurement("fft_forward", DeviceKind::kCpu));
  EXPECT_TRUE(scheduler.has_measurement("fft_forward", DeviceKind::kNdp));
  EXPECT_FALSE(scheduler.has_measurement("noop", DeviceKind::kCpu));
  EXPECT_EQ(scheduler.measurement_count(), 2u);
}

}  // namespace
}  // namespace ndft
