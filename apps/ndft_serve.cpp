// ndft_serve: the NDFT service daemon. Binds an HTTP/1.1 port, maps the
// /v1/jobs routes onto one api::Engine, and drains gracefully on
// SIGTERM/SIGINT: stop accepting, finish in-flight requests, let queued
// jobs complete, then exit 0. See docs/SERVICE.md for the protocol.
//
// Usage: ndft_serve [options]
//   --port N            listen port (default 8424; 0 = ephemeral, printed)
//   --address A         bind address (default 127.0.0.1)
//   --dispatch N        engine dispatcher threads (default 2)
//   --auth-token T      accepted bearer token (repeatable; default: the
//                       NDFT_AUTH_TOKENS env var, else open access)
//   --rate-limit R      requests/s per client address (default: off)
//   --burst B           rate-limit burst size (default: same as rate)
//   --quota N           max queued+running jobs per client (default: off)
//   --max-connections N concurrent connections (default 256)
//   --quiet             disable the per-request log line

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "net/server.hpp"
#include "net/service.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

[[noreturn]] void usage_error(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "%s: %s (see the header comment for usage)\n", argv0,
               what.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  ndft::net::ServerConfig server_config;
  server_config.port = 8424;
  ndft::net::ServiceConfig service_config;
  ndft::api::EngineConfig engine_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(argv[0], arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--port") {
      server_config.port = static_cast<std::uint16_t>(std::atoi(value().c_str()));
    } else if (arg == "--address") {
      server_config.bind_address = value();
    } else if (arg == "--dispatch") {
      engine_config.dispatch_threads =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--auth-token") {
      service_config.auth_tokens.push_back(value());
    } else if (arg == "--rate-limit") {
      service_config.rate_limit_per_s = std::atof(value().c_str());
    } else if (arg == "--burst") {
      service_config.rate_burst = std::atof(value().c_str());
    } else if (arg == "--quota") {
      service_config.queue_quota =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--max-connections") {
      server_config.max_connections =
          static_cast<std::size_t>(std::atoi(value().c_str()));
    } else if (arg == "--quiet") {
      service_config.log = nullptr;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see the header comment of apps/ndft_serve.cpp\n");
      return 0;
    } else {
      usage_error(argv[0], "unknown option " + arg);
    }
  }

  try {
    ndft::api::Engine engine(engine_config);
    ndft::net::Service service(engine, service_config);
    ndft::net::HttpServer server(
        server_config,
        [&service](const ndft::net::HttpRequest& request) {
          return service.handle(request);
        });
    server.start();
    std::fprintf(stderr, "ndft_serve: listening on %s:%u (%zu dispatchers)\n",
                 server_config.bind_address.c_str(),
                 static_cast<unsigned>(server.port()),
                 engine.dispatch_threads());

    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    // Graceful drain: stop accepting and finish in-flight requests first,
    // then let already-queued jobs run to completion. Per-job deadlines
    // and client cancellations keep applying throughout.
    std::fprintf(stderr, "ndft_serve: draining on signal\n");
    server.shutdown();
    engine.drain();
    std::fprintf(
        stderr,
        "ndft_serve: done (%llu submitted, %llu completed, %llu cancelled, "
        "%llu requests)\n",
        static_cast<unsigned long long>(engine.jobs_submitted()),
        static_cast<unsigned long long>(engine.jobs_completed()),
        static_cast<unsigned long long>(engine.jobs_cancelled()),
        static_cast<unsigned long long>(server.requests_served()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ndft_serve: fatal: %s\n", e.what());
    return 1;
  }
}
