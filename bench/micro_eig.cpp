// Eigensolver microbenchmark: blocked SYEVD (syevd) against the serial
// reference (syevd_naive), and the partial-spectrum solver
// (syevd_partial, lowest n/8 pairs) against the blocked full solve,
// across problem sizes and pool widths. Results go to BENCH_eig.json for
// cross-commit tracking; docs/PERF.md quotes a snapshot.
//
// Modes:
//   bench_micro_eig            full sweep: n in {64..1024}, threads {1,2,4,8}
//   bench_micro_eig --smoke    n = 128 only; exits nonzero if the blocked
//                              solver is slower than the reference or the
//                              partial solver is slower than the blocked
//                              full solve (the verify.sh --bench-smoke
//                              gate)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/prng.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dft/linalg.hpp"

using namespace ndft;

namespace {

using Clock = std::chrono::steady_clock;

dft::RealMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  dft::RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = prng.next_double(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

template <typename Fn>
double time_ms(Fn&& fn) {
  const Clock::time_point start = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ThreadSample {
  std::size_t threads = 0;
  double ms = 0.0;
  double speedup = 0.0;  ///< naive_ms / ms
};

struct PartialSample {
  std::size_t threads = 0;
  double ms = 0.0;
  double speedup_vs_full = 0.0;  ///< blocked full ms / partial ms
};

struct SizeSample {
  std::size_t n = 0;
  std::size_t partial_m = 0;  ///< lowest-pair window of the partial runs
  double naive_ms = 0.0;
  std::vector<ThreadSample> blocked;
  std::vector<PartialSample> partial;
  double max_eigenvalue_diff = 0.0;  ///< blocked vs naive, sanity check
  double max_partial_diff = 0.0;     ///< partial vs naive on the window
};

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{128}
            : std::vector<std::size_t>{64, 128, 256, 512, 1024};
  const std::vector<std::size_t> thread_sweep =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4, 8};

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();

  std::printf("SYEVD microbenchmark: blocked vs serial reference%s\n\n",
              smoke ? " (smoke)" : "");

  // The smoke gate compares wall times on a potentially loaded machine:
  // warm up once and take the minimum of three runs per side so a stray
  // preemption cannot fail the gate. The full sweep is reporting, not
  // gating, and the big sizes are expensive; one shot is fine there.
  const int reps = smoke ? 3 : 1;

  std::vector<SizeSample> samples;
  for (const std::size_t n : sizes) {
    const dft::RealMatrix m = random_symmetric(n, 1000 + n);
    SizeSample sample;
    sample.n = n;

    // The reference path is serial; one thread keeps the pool out of it.
    pool.resize(1);
    dft::EigenResult naive;
    if (smoke) naive = dft::syevd_naive(m);  // warmup
    sample.naive_ms = time_ms([&] { naive = dft::syevd_naive(m); });
    for (int r = 1; r < reps; ++r) {
      sample.naive_ms =
          std::min(sample.naive_ms, time_ms([&] { dft::syevd_naive(m); }));
    }

    // The low-band window the physics consumers ask for: n/8 pairs (64
    // of 512 is the headline SCF/EPM shape), at least one.
    sample.partial_m = std::max<std::size_t>(1, n / 8);
    for (const std::size_t threads : thread_sweep) {
      pool.resize(threads);
      dft::EigenResult blocked;
      ThreadSample ts;
      ts.threads = threads;
      if (smoke) blocked = dft::syevd(m);  // warmup
      ts.ms = time_ms([&] { blocked = dft::syevd(m); });
      for (int r = 1; r < reps; ++r) {
        ts.ms = std::min(ts.ms, time_ms([&] { dft::syevd(m); }));
      }
      ts.speedup = ts.ms > 0.0 ? sample.naive_ms / ts.ms : 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sample.max_eigenvalue_diff =
            std::max(sample.max_eigenvalue_diff,
                     std::fabs(blocked.eigenvalues[i] - naive.eigenvalues[i]));
      }
      sample.blocked.push_back(ts);

      dft::EigenResult partial;
      PartialSample ps;
      ps.threads = threads;
      if (smoke) partial = dft::syevd_partial(m, sample.partial_m);
      ps.ms = time_ms([&] {
        partial = dft::syevd_partial(m, sample.partial_m);
      });
      for (int r = 1; r < reps; ++r) {
        ps.ms = std::min(
            ps.ms, time_ms([&] { dft::syevd_partial(m, sample.partial_m); }));
      }
      ps.speedup_vs_full = ps.ms > 0.0 ? ts.ms / ps.ms : 0.0;
      for (std::size_t i = 0; i < sample.partial_m; ++i) {
        sample.max_partial_diff =
            std::max(sample.max_partial_diff,
                     std::fabs(partial.eigenvalues[i] - naive.eigenvalues[i]));
      }
      sample.partial.push_back(ps);
    }
    samples.push_back(std::move(sample));
  }
  pool.resize(original_threads);

  TextTable table({"n", "naive", "threads", "blocked", "speedup",
                   "partial(m=n/8)", "vs full", "max |dlambda|"});
  for (const SizeSample& s : samples) {
    for (std::size_t i = 0; i < s.blocked.size(); ++i) {
      const ThreadSample& t = s.blocked[i];
      const PartialSample& p = s.partial[i];
      table.add_row({strformat("%zu", s.n),
                     strformat("%.1f ms", s.naive_ms),
                     strformat("%zu", t.threads),
                     strformat("%.1f ms", t.ms),
                     strformat("%.2fx", t.speedup),
                     strformat("%.1f ms", p.ms),
                     strformat("%.2fx", p.speedup_vs_full),
                     strformat("%.1e", std::max(s.max_eigenvalue_diff,
                                                s.max_partial_diff))});
    }
  }
  std::printf("%s\n", table.render().c_str());

  Json bench = Json::object();
  bench.set("bench", "eig_syevd");
  bench.set("meta", run_metadata_json());
  Json entries = Json::array();
  for (const SizeSample& s : samples) {
    Json entry = Json::object();
    entry.set("n", s.n);
    entry.set("naive_ms", s.naive_ms);
    entry.set("max_eigenvalue_diff", s.max_eigenvalue_diff);
    Json runs = Json::array();
    for (const ThreadSample& t : s.blocked) {
      Json run = Json::object();
      run.set("threads", t.threads);
      run.set("ms", t.ms);
      run.set("speedup", t.speedup);
      runs.push_back(std::move(run));
    }
    entry.set("blocked", std::move(runs));
    entry.set("partial_m", s.partial_m);
    entry.set("max_partial_eigenvalue_diff", s.max_partial_diff);
    Json partial_runs = Json::array();
    for (const PartialSample& p : s.partial) {
      Json run = Json::object();
      run.set("threads", p.threads);
      run.set("ms", p.ms);
      run.set("speedup_vs_full", p.speedup_vs_full);
      partial_runs.push_back(std::move(run));
    }
    entry.set("partial", std::move(partial_runs));
    entries.push_back(std::move(entry));
  }
  bench.set("sizes", std::move(entries));
  const char* path = "BENCH_eig.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %zu size records to %s\n", samples.size(), path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
  }

  for (const SizeSample& s : samples) {
    if (s.max_eigenvalue_diff > 1e-8) {
      std::fprintf(stderr, "FAIL: blocked/naive spectra disagree at n=%zu\n",
                   s.n);
      return 1;
    }
    if (s.max_partial_diff > 1e-8) {
      std::fprintf(stderr,
                   "FAIL: partial/naive spectra disagree on the lowest "
                   "%zu pairs at n=%zu\n",
                   s.partial_m, s.n);
      return 1;
    }
  }
  if (smoke) {
    // Gate: at n=128 the blocked path must not lose to the reference, and
    // the partial path must not lose to the blocked full solve, at any
    // swept thread count's best.
    double best = samples[0].blocked[0].ms;
    for (const ThreadSample& t : samples[0].blocked) {
      best = std::min(best, t.ms);
    }
    if (best > samples[0].naive_ms) {
      std::fprintf(stderr,
                   "FAIL: blocked SYEVD slower than reference at n=128 "
                   "(%.1f ms vs %.1f ms)\n",
                   best, samples[0].naive_ms);
      return 1;
    }
    double best_partial = samples[0].partial[0].ms;
    for (const PartialSample& p : samples[0].partial) {
      best_partial = std::min(best_partial, p.ms);
    }
    if (best_partial > best) {
      std::fprintf(stderr,
                   "FAIL: partial SYEVD (m=%zu) slower than the full "
                   "blocked solve at n=128 (%.1f ms vs %.1f ms)\n",
                   samples[0].partial_m, best_partial, best);
      return 1;
    }
    std::printf(
        "smoke OK: blocked %.1f ms <= naive %.1f ms, partial(m=%zu) "
        "%.1f ms <= blocked %.1f ms at n=128\n",
        best, samples[0].naive_ms, samples[0].partial_m, best_partial, best);
  }
  return 0;
} catch (const NdftError& error) {
  std::fprintf(stderr, "micro_eig: %s\n", error.what());
  return 1;
}
