#pragma once
// Virtual MPI: a functional model of the process-parallel data
// redistribution in LR-TDDFT. MPI_Alltoall is executed for real (data
// moves between per-rank buffers) while tallying the traffic that the
// timing simulation charges to the fabric.

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ndft::dft {

/// A communicator over P virtual ranks.
class VirtualComm {
 public:
  explicit VirtualComm(unsigned ranks) : ranks_(ranks) {
    NDFT_REQUIRE(ranks > 0, "communicator needs at least one rank");
  }

  unsigned ranks() const noexcept { return ranks_; }

  /// MPI_Alltoall semantics: `send[p]` holds rank p's send buffer, evenly
  /// divided into P chunks; chunk q of rank p lands in chunk p of rank q's
  /// receive buffer. Every send buffer must have the same size, divisible
  /// by P. Returns the receive buffers.
  template <typename T>
  std::vector<std::vector<T>> alltoall(
      const std::vector<std::vector<T>>& send) {
    NDFT_REQUIRE(send.size() == ranks_, "need one send buffer per rank");
    const std::size_t total = send.front().size();
    NDFT_REQUIRE(total % ranks_ == 0,
                 "send buffer size must divide by the rank count");
    const std::size_t chunk = total / ranks_;
    for (const auto& buffer : send) {
      NDFT_REQUIRE(buffer.size() == total,
                   "all send buffers must have equal size");
    }
    std::vector<std::vector<T>> recv(ranks_, std::vector<T>(total));
    for (unsigned p = 0; p < ranks_; ++p) {
      for (unsigned q = 0; q < ranks_; ++q) {
        std::copy(send[p].begin() + static_cast<std::ptrdiff_t>(q * chunk),
                  send[p].begin() + static_cast<std::ptrdiff_t>((q + 1) *
                                                                chunk),
                  recv[q].begin() + static_cast<std::ptrdiff_t>(p * chunk));
        if (p != q) {
          off_node_bytes_ += chunk * sizeof(T);
        } else {
          local_bytes_ += chunk * sizeof(T);
        }
      }
    }
    return recv;
  }

  /// Bytes that crossed rank boundaries in all exchanges so far.
  Bytes off_node_bytes() const noexcept { return off_node_bytes_; }
  /// Bytes kept rank-local (the p == q chunks).
  Bytes local_bytes() const noexcept { return local_bytes_; }

 private:
  unsigned ranks_;
  Bytes off_node_bytes_ = 0;
  Bytes local_bytes_ = 0;
};

/// Row-block distribution helper: the rows of an (rows x cols) matrix are
/// split as evenly as possible over P ranks; rank p owns
/// [row_begin(p), row_end(p)).
struct BlockDistribution {
  std::size_t rows = 0;
  unsigned ranks = 1;

  std::size_t row_begin(unsigned rank) const {
    NDFT_ASSERT(rank < ranks);
    const std::size_t base = rows / ranks;
    const std::size_t extra = rows % ranks;
    return rank * base + std::min<std::size_t>(rank, extra);
  }
  std::size_t row_end(unsigned rank) const {
    NDFT_ASSERT(rank < ranks);
    const std::size_t base = rows / ranks;
    const std::size_t extra = rows % ranks;
    return row_begin(rank) + base + (rank < extra ? 1 : 0);
  }
  std::size_t rows_of(unsigned rank) const {
    return row_end(rank) - row_begin(rank);
  }
};

}  // namespace ndft::dft
