#pragma once
// The discrete-event core of the NDFT timing simulator.
//
// Every hardware model (DRAM controller, NoC link, core, arbiter) schedules
// callbacks on a single global EventQueue. Events at the same timestamp run
// in schedule order (FIFO), which makes the simulation deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ndft::sim {

/// Callback type executed when an event fires.
using EventFn = std::function<void()>;

/// A deterministic discrete-event scheduler with integer-picosecond time.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Advances only inside run()/run_until().
  TimePs now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now()).
  void schedule_at(TimePs when, EventFn fn);

  /// Schedules `fn` to run `delay` picoseconds from now.
  void schedule_after(TimePs delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains. Returns the time of the last event.
  TimePs run();

  /// Runs events with timestamp <= `deadline`, then clamps: now() lands
  /// exactly on `deadline` even when the queue drains early or events
  /// remain scheduled past it. Returns now() (== deadline unless the
  /// queue was already past it, in which case time does not move
  /// backwards). Pinned by sim_test RunUntil* tests.
  TimePs run_until(TimePs deadline);

  /// Number of events waiting to fire.
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Total events executed since construction (for budget checks in tests).
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    TimePs when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void pop_and_run();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ndft::sim
