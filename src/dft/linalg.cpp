#include "dft/linalg.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/kernel_trace.hpp"
#include "common/math_util.hpp"
#include "common/thread_pool.hpp"

namespace ndft::dft {
namespace {

// --------------------------------------------------------- linalg timer
//
// Per-thread wall-clock tally of time spent inside top-level linalg entry
// points. Jobs execute on one engine thread, so reset-before / read-after
// brackets exactly the linalg share of that job. The depth counter keeps
// nested entries (GEMM called from inside syevd) from double counting.

thread_local double tl_linalg_ms = 0.0;
thread_local unsigned tl_linalg_depth = 0;

class LinalgTimerScope {
 public:
  LinalgTimerScope() noexcept : start_(std::chrono::steady_clock::now()) {
    ++tl_linalg_depth;
  }
  ~LinalgTimerScope() {
    if (--tl_linalg_depth == 0) {
      tl_linalg_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    }
  }
  LinalgTimerScope(const LinalgTimerScope&) = delete;
  LinalgTimerScope& operator=(const LinalgTimerScope&) = delete;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// sqrt(a^2 + b^2) without destructive overflow.
double pythag(double a, double b) noexcept {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double ratio = absb / absa;
    return absa * std::sqrt(1.0 + ratio * ratio);
  }
  if (absb == 0.0) {
    return 0.0;
  }
  const double ratio = absa / absb;
  return absb * std::sqrt(1.0 + ratio * ratio);
}

double sign_of(double magnitude, double sign) noexcept {
  return sign >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (EISPACK tred2 lineage). On return `z` holds the accumulated orthogonal
/// transformation, `d` the diagonal and `e` the subdiagonal (e[0] unused).
void tred2(RealMatrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the transformation matrix.
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on a tridiagonal matrix with eigenvector
/// accumulation (EISPACK tql2 lineage). `d` holds eigenvalues on return.
void tql2(std::vector<double>& d, std::vector<double>& e, RealMatrix& z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    unsigned iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        NDFT_REQUIRE(iter++ < 50, "QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          e[i + 1] = r = pythag(f, g);
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

// ------------------------------------------------- blocked eigensolver
//
// LAPACK-shaped two-phase path on full symmetric storage. Reduction
// processes panels of kEigBlock columns: each column's reflector is
// generated after folding in the panel's previous reflectors (dlatrd
// recurrence, with the dominant trailing matrix-vector product running on
// the thread pool), and the trailing matrix is updated once per panel
// with a single rank-2k GEMM on the blocked kernel. The tridiagonal
// eigenproblem reuses the tql2 recurrence for d/e, but buffers each QL
// sweep's Givens rotations and applies them to the *transposed*
// eigenvector matrix, where a rotation touches two contiguous rows: the
// sweep vectorises and splits across the pool by column ranges. The
// back-transformation accumulates each panel into a compact-WY factor
// (I - V T V^T) and applies it with three GEMMs. Every stage either runs
// serially or partitions disjoint outputs with a fixed per-element
// operation order, so results are bitwise identical for any thread count.

constexpr std::size_t kEigBlock = 32;  ///< reduction/back-transform panel

/// The eigensolver issues many short-lived stages (per-column gemv, panel
/// copies); waking the pool costs more than such a stage is worth, so
/// these dispatch only above ~1M flops per call. The chunky stages (QL
/// rotation batches, GEMM) keep the default grain policy.
constexpr std::size_t kEigDispatchWork = std::size_t{1} << 20;

std::size_t eig_grain(std::size_t work_per_index) {
  return std::max<std::size_t>(
      1, kEigDispatchWork / std::max<std::size_t>(1, work_per_index));
}

/// Blocked Householder reduction to tridiagonal form (dsytrd/dlatrd
/// lineage, lower-triangle convention). On return `d` is the diagonal,
/// `e` the subdiagonal (e[0] unused), `tau` the reflector scalars, and
/// reflector j's vector sits in a(j+1:n, j) with its leading 1 stored
/// explicitly at a(j+1, j) for the back-transformation.
void blocked_tridiagonalize(RealMatrix& a, std::vector<double>& d,
                            std::vector<double>& e,
                            std::vector<double>& tau) {
  const std::size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  tau.assign(n, 0.0);
  std::vector<double> v(n, 0.0);  // contiguous copy of the active reflector
  for (std::size_t i0 = 0; i0 + 2 < n;) {
    const std::size_t kb = std::min(kEigBlock, n - 2 - i0);
    RealMatrix w(n, kb);  // the panel's W accumulator (dlatrd)
    for (std::size_t jj = 0; jj < kb; ++jj) {
      const std::size_t j = i0 + jj;
      // Fold the panel's previous reflectors into column j:
      // a(j:n, j) -= V(j:n, 0:jj) w(j, 0:jj)^T + W(j:n, 0:jj) v(j, 0:jj)^T.
      if (jj > 0) {
        for (std::size_t r = j; r < n; ++r) {
          double acc = 0.0;
          for (std::size_t p = 0; p < jj; ++p) {
            acc += a(r, i0 + p) * w(j, p) + w(r, p) * a(j, i0 + p);
          }
          a(r, j) -= acc;
        }
      }
      // Householder reflector annihilating a(j+2:n, j).
      double tail2 = 0.0;
      for (std::size_t r = j + 2; r < n; ++r) tail2 += a(r, j) * a(r, j);
      const double alpha = a(j + 1, j);
      double beta = alpha;
      double tau_j = 0.0;
      if (tail2 != 0.0) {
        beta = -sign_of(pythag(alpha, std::sqrt(tail2)), alpha);
        tau_j = (beta - alpha) / beta;
        const double inv = 1.0 / (alpha - beta);
        for (std::size_t r = j + 2; r < n; ++r) a(r, j) *= inv;
      }
      tau[j] = tau_j;
      e[j + 1] = beta;
      a(j + 1, j) = 1.0;  // leading 1 of v_j, kept for the back-transform
      for (std::size_t r = 0; r < n; ++r) v[r] = (r > j) ? a(r, j) : 0.0;
      // w_j = tau (A_t v - V (W^T v) - W (V^T v)) - (tau/2)(w^T v) v, with
      // A_t the trailing square as of panel start. The matrix-vector
      // product dominates the panel work; rows are independent.
      parallel_for(j + 1, n, eig_grain(n - j),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       const double* row = a.row(r);
                       double acc = 0.0;
                       for (std::size_t c = j + 1; c < n; ++c) {
                         acc += row[c] * v[c];
                       }
                       w(r, jj) = acc;
                     }
                   });
      if (jj > 0) {
        std::vector<double> wtv(jj, 0.0);
        std::vector<double> vtv(jj, 0.0);
        for (std::size_t p = 0; p < jj; ++p) {
          double acc_w = 0.0;
          double acc_v = 0.0;
          for (std::size_t r = j + 1; r < n; ++r) {
            acc_w += w(r, p) * v[r];
            acc_v += a(r, i0 + p) * v[r];
          }
          wtv[p] = acc_w;
          vtv[p] = acc_v;
        }
        for (std::size_t r = j + 1; r < n; ++r) {
          double acc = 0.0;
          for (std::size_t p = 0; p < jj; ++p) {
            acc += a(r, i0 + p) * wtv[p] + w(r, p) * vtv[p];
          }
          w(r, jj) -= acc;
        }
      }
      double dot = 0.0;
      for (std::size_t r = j + 1; r < n; ++r) {
        w(r, jj) *= tau_j;
        dot += w(r, jj) * v[r];
      }
      const double correction = -0.5 * tau_j * dot;
      for (std::size_t r = j + 1; r < n; ++r) {
        w(r, jj) += correction * v[r];
      }
    }
    // Trailing rank-2k update A_t -= V W^T + W V^T, expressed as the
    // single blocked GEMM A_t += (-[V | W]) [W | V]^T over the full
    // trailing square (the update is symmetric, so full storage stays
    // consistent for the next panel's matrix-vector products).
    const std::size_t t0 = i0 + kb;
    const std::size_t m = n - t0;
    if (m > 0) {
      RealMatrix left(m, 2 * kb);
      RealMatrix right(m, 2 * kb);
      RealMatrix trailing(m, m);
      parallel_for(0, m, eig_grain(4 * kb + m),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       for (std::size_t p = 0; p < kb; ++p) {
                         const double vv = a(t0 + r, i0 + p);
                         const double ww = w(t0 + r, p);
                         left(r, p) = vv;
                         left(r, kb + p) = ww;
                         right(r, p) = ww;
                         right(r, kb + p) = vv;
                       }
                       std::copy(a.row(t0 + r) + t0, a.row(t0 + r) + n,
                                 trailing.row(r));
                     }
                   });
      gemm(left, right, trailing, -1.0, 1.0, /*transpose_a=*/false,
           /*transpose_b=*/true);
      parallel_for(0, m, eig_grain(m),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       std::copy(trailing.row(r), trailing.row(r) + m,
                                 a.row(t0 + r) + t0);
                     }
                   });
    }
    i0 += kb;
  }
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
  if (n >= 2) e[n - 1] = a(n - 1, n - 2);
}

/// One Givens rotation of a QL sweep, mixing eigenvector-matrix columns
/// (col, col + 1).
struct GivensRotation {
  std::size_t col;
  double c;
  double s;
};

/// Deferred application of QL rotations to the transposed eigenvector
/// matrix (zt(j, k) = Z(k, j)). The d/e recurrence never reads zt, so
/// rotations accumulate in a log and hit the matrix in large batches: one
/// pool dispatch applies tens of sweeps, amortising the dispatch cost
/// that per-sweep application would pay ~2n times per solve. Within a
/// batch every column sees the rotations in recorded order — exactly the
/// serial order — so results stay bitwise identical for any thread count
/// and any batch boundary.
class RotationLog {
 public:
  explicit RotationLog(RealMatrix& zt) : zt_(&zt) {
    pending_.reserve(kFlushThreshold + zt.rows());
  }

  void push(std::size_t col, double c, double s) {
    pending_.push_back({col, c, s});
  }

  /// Called between sweeps; applies the log once it is worth a dispatch.
  void maybe_flush() {
    if (pending_.size() >= kFlushThreshold) flush();
  }

  void flush() {
    if (pending_.empty()) return;
    RealMatrix& zt = *zt_;
    // Wide column bands: every band re-reads the whole rotation log, so
    // narrow bands multiply the per-rotation fixed cost. 128 columns keep
    // that amortised while still splitting across the pool.
    const std::size_t band = std::max<std::size_t>(
        128, parallel_grain(6 * pending_.size()));
    parallel_for(0, zt.cols(), band,
                 [&](std::size_t lo, std::size_t hi) {
                   for (const GivensRotation& rot : pending_) {
                     double* upper = zt.row(rot.col);
                     double* lower = zt.row(rot.col + 1);
                     for (std::size_t k = lo; k < hi; ++k) {
                       const double f = lower[k];
                       const double g = upper[k];
                       lower[k] = rot.s * g + rot.c * f;
                       upper[k] = rot.c * g - rot.s * f;
                     }
                   }
                 });
    pending_.clear();
  }

 private:
  /// Rotations per batch: big enough that one dispatch carries real work
  /// (~6 * threshold * n flops), small enough to stay cache-resident.
  static constexpr std::size_t kFlushThreshold = 16384;

  std::vector<GivensRotation> pending_;
  RealMatrix* zt_;
};

/// Implicit-shift QL with the same d/e recurrence as tql2, but with the
/// rotations routed through a RotationLog instead of being applied to the
/// eigenvector matrix one sweep at a time. The rotation sequence depends
/// only on d/e, so it is identical for any thread count.
void tridiag_ql(std::vector<double>& d, std::vector<double>& e,
                RealMatrix& zt) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  RotationLog log(zt);

  for (std::size_t l = 0; l < n; ++l) {
    unsigned iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        NDFT_REQUIRE(iter++ < 50, "QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          e[i + 1] = r = pythag(f, g);
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          log.push(i, c, s);
        }
        log.maybe_flush();
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  log.flush();
}

/// z := Q z with Q = H_0 H_1 ... H_{n-3} read from the reflectors
/// blocked_tridiagonalize stored in `a`. Panels are applied in reverse
/// order as compact-WY updates (dlarft forward factor, then three GEMMs
/// per panel restricted to the rows the panel touches).
void apply_q_blocked(const RealMatrix& a, const std::vector<double>& tau,
                     RealMatrix& z) {
  const std::size_t n = a.rows();
  if (n < 3) return;
  std::vector<std::size_t> panel_starts;
  for (std::size_t i0 = 0; i0 + 2 < n;
       i0 += std::min(kEigBlock, n - 2 - i0)) {
    panel_starts.push_back(i0);
  }
  const std::size_t cols = z.cols();
  for (std::size_t pi = panel_starts.size(); pi-- > 0;) {
    const std::size_t i0 = panel_starts[pi];
    const std::size_t kb = std::min(kEigBlock, n - 2 - i0);
    const std::size_t r0 = i0 + 1;  // first row the panel can touch
    const std::size_t m = n - r0;
    // V (m x kb): column p is reflector i0+p, unit at global row i0+p+1,
    // zero above (zero-initialised storage provides the zeros).
    RealMatrix v(m, kb);
    for (std::size_t rr = 0; rr < m; ++rr) {
      const std::size_t r = r0 + rr;
      for (std::size_t p = 0; p < kb && i0 + p + 1 <= r; ++p) {
        v(rr, p) = a(r, i0 + p);
      }
    }
    // Compact-WY factor (dlarft, forward columnwise): the panel's product
    // of reflectors is I - V T V^T with T upper triangular.
    RealMatrix t(kb, kb);
    std::vector<double> h(kb, 0.0);
    for (std::size_t p = 0; p < kb; ++p) {
      const double tau_p = tau[i0 + p];
      if (tau_p == 0.0) continue;  // H = I: the zero row/column is exact
      for (std::size_t q = 0; q < p; ++q) {
        double acc = 0.0;
        for (std::size_t rr = 0; rr < m; ++rr) acc += v(rr, q) * v(rr, p);
        h[q] = acc;
      }
      for (std::size_t q = 0; q < p; ++q) {
        double acc = 0.0;
        for (std::size_t u = q; u < p; ++u) acc += t(q, u) * h[u];
        t(q, p) = -tau_p * acc;
      }
      t(p, p) = tau_p;
    }
    // z(r0:n, :) -= V (T (V^T z(r0:n, :))).
    RealMatrix zs(m, cols);
    parallel_for(0, m, eig_grain(cols),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t rr = lo; rr < hi; ++rr) {
                     std::copy(z.row(r0 + rr), z.row(r0 + rr) + cols,
                               zs.row(rr));
                   }
                 });
    RealMatrix x1;
    gemm(v, zs, x1, 1.0, 0.0, /*transpose_a=*/true);
    RealMatrix x2;
    gemm(t, x1, x2);
    gemm(v, x2, zs, -1.0, 1.0);
    parallel_for(0, m, eig_grain(cols),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t rr = lo; rr < hi; ++rr) {
                     std::copy(zs.row(rr), zs.row(rr) + cols,
                               z.row(r0 + rr));
                   }
                 });
  }
}

/// Sorts eigenvalues ascending, permuting eigenvector columns to match.
void sort_eigenpairs(const std::vector<double>& d, const RealMatrix& z,
                     EigenResult& result) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });
  result.eigenvalues.resize(n);
  RealMatrix sorted(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted(i, j) = z(i, order[j]);
    }
  }
  result.eigenvectors = std::move(sorted);
}

/// Analytic SYEVD tally shared by both solvers (the syevd_cost formula).
void count_syevd(std::size_t n, OpCount* count) {
  if (count == nullptr) return;
  const SyevdCost cost = syevd_cost(n);
  count->add(cost.flops, cost.bytes);
}

/// Conjugates complex values when `Conj`; the identity for doubles.
template <bool Conj, typename T>
T maybe_conj(const T& value) {
  if constexpr (Conj && !std::is_same_v<T, double>) {
    return std::conj(value);
  } else {
    return value;
  }
}

// ------------------------------------------------------------ GEMM layer
//
// BLIS-style blocking: C is computed in (kMc x kNr)-tall bands. op(A) and
// op(B) blocks are packed into contiguous micro-panels (the transpose /
// conjugation is absorbed by the packing, so whole-operand copies never
// happen), and an (kMr x kNr) register-tile microkernel runs over the
// packed panels. Row blocks are independent, so they are spread across
// the thread pool; every C element sees k-terms in the same order
// regardless of the thread count, keeping results bitwise deterministic.

constexpr std::size_t kMr = 6;    ///< microkernel rows (register tile)
constexpr std::size_t kNr = 16;   ///< microkernel cols (two AVX-512 lanes)
constexpr std::size_t kMc = 96;   ///< row block, multiple of kMr
constexpr std::size_t kKc = 240;  ///< depth block (packed panels stay hot)
constexpr std::size_t kNc = 2016; ///< column block, multiple of kNr

/// Below this op(A)*op(B) volume (m*n*k) the packing overhead dominates
/// and the reference loop wins; also keeps tiny products allocation-free.
constexpr std::size_t kSmallGemmVolume = 32768;

/// Packs an (mc x kc) block of op(A) into kMr-row micro-panels,
/// zero-padding the row remainder. Panel p holds rows [p*kMr, p*kMr+kMr)
/// in k-major order: element (i, l) of the block at p*kMr*kc + l*kMr + i.
template <bool Transpose, bool Conj, typename T>
void pack_a_block(const Matrix<T>& a, std::size_t row0, std::size_t col0,
                  std::size_t mc, std::size_t kc, T* buffer) {
  for (std::size_t ip = 0; ip < mc; ip += kMr) {
    const std::size_t rows = std::min(kMr, mc - ip);
    for (std::size_t l = 0; l < kc; ++l) {
      for (std::size_t i = 0; i < kMr; ++i) {
        T value{};
        if (i < rows) {
          value = Transpose
                      ? maybe_conj<Conj>(a(col0 + l, row0 + ip + i))
                      : a(row0 + ip + i, col0 + l);
        }
        *buffer++ = value;
      }
    }
  }
}

/// Packs a (kc x nc) block of op(B) into kNr-column micro-panels,
/// zero-padding the column remainder: element (l, j) of panel p sits at
/// p*kNr*kc + l*kNr + j.
template <bool Transpose, typename T>
void pack_b_block(const Matrix<T>& b, std::size_t row0, std::size_t col0,
                  std::size_t kc, std::size_t nc, T* buffer) {
  for (std::size_t jp = 0; jp < nc; jp += kNr) {
    const std::size_t cols = std::min(kNr, nc - jp);
    for (std::size_t l = 0; l < kc; ++l) {
      for (std::size_t j = 0; j < kNr; ++j) {
        T value{};
        if (j < cols) {
          value = Transpose ? b(col0 + jp + j, row0 + l)
                            : b(row0 + l, col0 + jp + j);
        }
        *buffer++ = value;
      }
    }
  }
}

#if defined(__GNUC__) && defined(__AVX512F__)
#define NDFT_GEMM_SIMD 1
/// 8 doubles per lane; kNr is exactly two lanes.
typedef double V8d __attribute__((vector_size(64)));

V8d v8_load(const double* p) {
  V8d v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned load, folds to vmovupd
  return v;
}
#endif

/// Register-tile kernel: acc(kMr x kNr) += Apanel * Bpanel over kc terms.
/// The double path names every accumulator lane explicitly — compilers
/// reliably spill a 2D accumulator array to the stack, which costs an
/// order of magnitude here — and the generic path (complex, non-AVX512
/// builds) uses plain loops with compile-time extents.
template <typename T>
void micro_kernel(std::size_t kc, const T* __restrict a_panel,
                  const T* __restrict b_panel, T* __restrict acc) {
#if NDFT_GEMM_SIMD
  if constexpr (std::is_same_v<T, double>) {
    static_assert(kMr == 6 && kNr == 16, "tile shape is hard-wired below");
    V8d c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
    V8d c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
    for (std::size_t l = 0; l < kc; ++l) {
      const double* a = a_panel + l * kMr;
      const V8d b0 = v8_load(b_panel + l * kNr);
      const V8d b1 = v8_load(b_panel + l * kNr + 8);
      V8d av;
      av = V8d{} + a[0]; c00 += av * b0; c01 += av * b1;
      av = V8d{} + a[1]; c10 += av * b0; c11 += av * b1;
      av = V8d{} + a[2]; c20 += av * b0; c21 += av * b1;
      av = V8d{} + a[3]; c30 += av * b0; c31 += av * b1;
      av = V8d{} + a[4]; c40 += av * b0; c41 += av * b1;
      av = V8d{} + a[5]; c50 += av * b0; c51 += av * b1;
    }
    const V8d rows[12] = {c00, c01, c10, c11, c20, c21,
                          c30, c31, c40, c41, c50, c51};
    __builtin_memcpy(acc, rows, sizeof(rows));
    return;
  }
#endif
  for (std::size_t l = 0; l < kc; ++l) {
    const T* a = a_panel + l * kMr;
    const T* b = b_panel + l * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const T aval = a[i];
      T* row = acc + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) {
        row[j] += aval * b[j];
      }
    }
  }
}

/// Reference triple loop (also the small-product fast path): transposition
/// read through indexing, no operand copies, no branches in the k loop.
template <bool TransposeA, bool TransposeB, bool ConjA, typename T>
void gemm_reference(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                    T alpha, T beta, std::size_t m, std::size_t n,
                    std::size_t k) {
  for (std::size_t i = 0; i < m; ++i) {
    T* crow = c.row(i);
    if (beta == T{}) {
      std::fill(crow, crow + n, T{});
    } else if (beta != T{1.0}) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::size_t l = 0; l < k; ++l) {
      const T aval =
          alpha * (TransposeA ? maybe_conj<ConjA>(a(l, i)) : a(i, l));
      if constexpr (TransposeB) {
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aval * b(j, l);
        }
      } else {
        const T* brow = b.row(l);
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aval * brow[j];
        }
      }
    }
  }
}

template <typename T>
void gemm_reference_dispatch(const Matrix<T>& a, const Matrix<T>& b,
                             Matrix<T>& c, T alpha, T beta, bool transpose_a,
                             bool transpose_b, std::size_t m, std::size_t n,
                             std::size_t k) {
  if (transpose_a) {
    if (transpose_b) {
      gemm_reference<true, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_reference<true, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  } else {
    if (transpose_b) {
      gemm_reference<false, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_reference<false, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  }
}

/// Shape checks shared by every entry point; sizes C when allowed.
template <typename T>
void gemm_prepare(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                  T beta, bool transpose_a, bool transpose_b, std::size_t& m,
                  std::size_t& n, std::size_t& k) {
  m = transpose_a ? a.cols() : a.rows();
  k = transpose_a ? a.rows() : a.cols();
  const std::size_t b_rows = transpose_b ? b.cols() : b.rows();
  n = transpose_b ? b.rows() : b.cols();
  NDFT_REQUIRE(b_rows == k, "gemm: inner dimensions must agree");
  if (c.rows() != m || c.cols() != n) {
    NDFT_REQUIRE(beta == T{}, "gemm: beta != 0 requires a sized C");
    c = Matrix<T>(m, n);
  }
}

template <bool TransposeA, bool TransposeB, bool ConjA, typename T>
void gemm_blocked(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                  T alpha, T beta, std::size_t m, std::size_t n,
                  std::size_t k) {
  std::vector<T> b_pack(kKc * std::min(kNc, round_up(n, kNr)));
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const bool first_k_block = (pc == 0);
      pack_b_block<TransposeB>(b, pc, jc, kc, nc, b_pack.data());

      const std::size_t row_blocks = ceil_div(m, kMc);
      parallel_for(0, row_blocks, 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<T> a_pack(kMc * kc);
        T acc[kMr * kNr];
        for (std::size_t block = lo; block < hi; ++block) {
          const std::size_t ic = block * kMc;
          const std::size_t mc = std::min(kMc, m - ic);
          pack_a_block<TransposeA, ConjA>(a, ic, pc, mc, kc, a_pack.data());
          for (std::size_t jp = 0; jp < nc; jp += kNr) {
            const std::size_t cols = std::min(kNr, nc - jp);
            const T* b_panel = b_pack.data() + (jp / kNr) * kNr * kc;
            for (std::size_t ip = 0; ip < mc; ip += kMr) {
              const std::size_t rows = std::min(kMr, mc - ip);
              const T* a_panel = a_pack.data() + (ip / kMr) * kMr * kc;
              std::fill(acc, acc + kMr * kNr, T{});
              micro_kernel(kc, a_panel, b_panel, acc);
              for (std::size_t i = 0; i < rows; ++i) {
                T* crow = c.row(ic + ip + i) + jc + jp;
                const T* arow = acc + i * kNr;
                if (first_k_block) {
                  if (beta == T{}) {
                    for (std::size_t j = 0; j < cols; ++j) {
                      crow[j] = alpha * arow[j];
                    }
                  } else {
                    for (std::size_t j = 0; j < cols; ++j) {
                      crow[j] = beta * crow[j] + alpha * arow[j];
                    }
                  }
                } else {
                  for (std::size_t j = 0; j < cols; ++j) {
                    crow[j] += alpha * arow[j];
                  }
                }
              }
            }
          }
        }
      });
    }
  }
}

/// 3M split-complex product: op(A) op(B) through three real GEMMs on the
/// blocked real kernel (Re, Im and Re+Im products), recombined with the
/// complex alpha/beta afterwards. The conjugate transpose is absorbed by
/// negating Im(A) before the transposed real products. Every stage is
/// either the deterministic blocked kernel or a disjoint-row pool loop,
/// so the result is bitwise identical for any thread count.
void gemm_3m(const ComplexMatrix& a, const ComplexMatrix& b,
             ComplexMatrix& c, Complex alpha, Complex beta,
             bool conj_transpose_a, bool transpose_b, std::size_t m,
             std::size_t n) {
  RealMatrix a_re(a.rows(), a.cols());
  RealMatrix a_im(a.rows(), a.cols());
  RealMatrix a_sum(a.rows(), a.cols());
  const double im_sign = conj_transpose_a ? -1.0 : 1.0;
  parallel_for(0, a.rows(), parallel_grain(a.cols()),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   const Complex* src = a.row(r);
                   for (std::size_t j = 0; j < a.cols(); ++j) {
                     a_re(r, j) = src[j].real();
                     a_im(r, j) = im_sign * src[j].imag();
                     a_sum(r, j) = a_re(r, j) + a_im(r, j);
                   }
                 }
               });
  RealMatrix b_re(b.rows(), b.cols());
  RealMatrix b_im(b.rows(), b.cols());
  RealMatrix b_sum(b.rows(), b.cols());
  parallel_for(0, b.rows(), parallel_grain(b.cols()),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   const Complex* src = b.row(r);
                   for (std::size_t j = 0; j < b.cols(); ++j) {
                     b_re(r, j) = src[j].real();
                     b_im(r, j) = src[j].imag();
                     b_sum(r, j) = b_re(r, j) + b_im(r, j);
                   }
                 }
               });
  RealMatrix p1;  // Re x Re
  RealMatrix p2;  // Im x Im
  RealMatrix p3;  // (Re+Im) x (Re+Im)
  gemm(a_re, b_re, p1, 1.0, 0.0, conj_transpose_a, transpose_b);
  gemm(a_im, b_im, p2, 1.0, 0.0, conj_transpose_a, transpose_b);
  gemm(a_sum, b_sum, p3, 1.0, 0.0, conj_transpose_a, transpose_b);
  parallel_for(0, m, parallel_grain(n),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   Complex* crow = c.row(i);
                   for (std::size_t j = 0; j < n; ++j) {
                     const Complex prod{p1(i, j) - p2(i, j),
                                        p3(i, j) - p1(i, j) - p2(i, j)};
                     crow[j] = (beta == Complex{})
                                   ? alpha * prod
                                   : beta * crow[j] + alpha * prod;
                   }
                 }
               });
}

template <typename T>
void gemm_impl(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c, T alpha,
               T beta, bool transpose_a, bool transpose_b) {
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, transpose_a, transpose_b, m, n, k);
  if (m * n * k <= kSmallGemmVolume) {
    gemm_reference_dispatch(a, b, c, alpha, beta, transpose_a, transpose_b,
                            m, n, k);
    return;
  }
  if constexpr (std::is_same_v<T, Complex>) {
    // Large complex products ride the real microkernel via the 3M split
    // instead of the generic scalar complex micro-tile.
    gemm_3m(a, b, c, alpha, beta, transpose_a, transpose_b, m, n);
  } else {
    if (transpose_a) {
      if (transpose_b) {
        gemm_blocked<true, true, true>(a, b, c, alpha, beta, m, n, k);
      } else {
        gemm_blocked<true, false, true>(a, b, c, alpha, beta, m, n, k);
      }
    } else {
      if (transpose_b) {
        gemm_blocked<false, true, true>(a, b, c, alpha, beta, m, n, k);
      } else {
        gemm_blocked<false, false, true>(a, b, c, alpha, beta, m, n, k);
      }
    }
  }
}

}  // namespace

void gemm(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
          double alpha, double beta, bool transpose_a, bool transpose_b,
          OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kGemm, "gemm");
  {
    const std::size_t m = transpose_a ? a.cols() : a.rows();
    const std::size_t k = transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    trace.set_dims(m, n, k);
    trace.set_work(2ull * m * n * k,
                   (m * k + k * n + 2 * m * n) * sizeof(double));
    trace.set_io((m * k + k * n) * sizeof(double), m * n * sizeof(double));
  }
  gemm_impl(a, b, c, alpha, beta, transpose_a, transpose_b);
  if (count != nullptr) {
    const std::size_t m = transpose_a ? a.cols() : a.rows();
    const std::size_t k = transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm(const ComplexMatrix& a, const ComplexMatrix& b, ComplexMatrix& c,
          Complex alpha, Complex beta, bool conj_transpose_a,
          bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kGemm, "gemm.c");
  {
    const std::size_t m = conj_transpose_a ? a.cols() : a.rows();
    const std::size_t k = conj_transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    trace.set_dims(m, n, k);
    trace.set_work(8ull * m * n * k,
                   (m * k + k * n + 2 * m * n) * sizeof(Complex));
    trace.set_io((m * k + k * n) * sizeof(Complex), m * n * sizeof(Complex));
  }
  gemm_impl(a, b, c, alpha, beta, conj_transpose_a, transpose_b);
  if (count != nullptr) {
    const std::size_t m = conj_transpose_a ? a.cols() : a.rows();
    const std::size_t k = conj_transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

void gemm_naive(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
                double alpha, double beta, bool transpose_a,
                bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, transpose_a, transpose_b, m, n, k);
  gemm_reference_dispatch(a, b, c, alpha, beta, transpose_a, transpose_b, m,
                          n, k);
  if (count != nullptr) {
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm_naive(const ComplexMatrix& a, const ComplexMatrix& b,
                ComplexMatrix& c, Complex alpha, Complex beta,
                bool conj_transpose_a, bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, conj_transpose_a, transpose_b, m, n, k);
  gemm_reference_dispatch(a, b, c, alpha, beta, conj_transpose_a,
                          transpose_b, m, n, k);
  if (count != nullptr) {
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

EigenResult syevd(const RealMatrix& symmetric, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "syevd");
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd: matrix must be square");
  const std::size_t n = symmetric.rows();
  trace.set_dims(n, n, 0);
  {
    const SyevdCost cost = syevd_cost(n);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(double), (n * n + n) * sizeof(double));
  EigenResult result;
  if (n == 0) return result;

  RealMatrix reduced = symmetric;
  std::vector<double> d;
  std::vector<double> e;
  std::vector<double> tau;
  blocked_tridiagonalize(reduced, d, e, tau);

  // Eigenvectors of the tridiagonal matrix, accumulated transposed so the
  // QL rotation sweeps touch contiguous rows.
  RealMatrix zt(n, n);
  for (std::size_t i = 0; i < n; ++i) zt(i, i) = 1.0;
  tridiag_ql(d, e, zt);

  RealMatrix z(n, n);
  parallel_for(0, n, eig_grain(n),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   double* row = z.row(r);
                   for (std::size_t c = 0; c < n; ++c) row[c] = zt(c, r);
                 }
               });
  apply_q_blocked(reduced, tau, z);

  sort_eigenpairs(d, z, result);
  count_syevd(n, count);
  return result;
}

EigenResult syevd_naive(const RealMatrix& symmetric, OpCount* count) {
  LinalgTimerScope timer;
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd_naive: matrix must be square");
  const std::size_t n = symmetric.rows();
  EigenResult result;
  result.eigenvectors = symmetric;  // tred2 works in place
  std::vector<double> d;
  std::vector<double> e;
  tred2(result.eigenvectors, d, e);
  tql2(d, e, result.eigenvectors);
  sort_eigenpairs(d, result.eigenvectors, result);
  count_syevd(n, count);
  return result;
}

HermitianEigenResult heev(const ComplexMatrix& hermitian, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "heev");
  NDFT_REQUIRE(hermitian.rows() == hermitian.cols(),
               "heev: matrix must be square");
  const std::size_t n = hermitian.rows();
  // Dims and costs follow the 2n x 2n real embedding the solve actually
  // runs: the trace consumers' SYEVD reuse model keys its arithmetic
  // intensity off dims[0], which must name the executed solve size.
  trace.set_dims(2 * n, 2 * n, 0);
  {
    const SyevdCost cost = syevd_cost(2 * n);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(Complex), (n * n + n) * sizeof(Complex));
  // Real embedding M = [[A, -B], [B, A]] for H = A + iB: the Hermitian
  // solve rides the blocked real path.
  RealMatrix embedded(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Complex h = hermitian(i, j);
      embedded(i, j) = h.real();
      embedded(i + n, j + n) = h.real();
      embedded(i, j + n) = -h.imag();
      embedded(i + n, j) = h.imag();
    }
  }
  EigenResult real_result = syevd(embedded, count);

  // Each eigenvalue of H appears twice; fold pairs and rebuild complex
  // eigenvectors v = x + i y, re-orthonormalising inside degenerate groups.
  HermitianEigenResult result;
  result.eigenvalues.reserve(n);
  result.eigenvectors = ComplexMatrix(n, n);
  std::vector<std::vector<Complex>> kept;
  kept.reserve(n);
  for (std::size_t j = 0; j < 2 * n && kept.size() < n; ++j) {
    std::vector<Complex> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = Complex{real_result.eigenvectors(i, j),
                     real_result.eigenvectors(i + n, j)};
    }
    // Project out already-kept vectors (modified Gram-Schmidt).
    for (const auto& u : kept) {
      Complex overlap{};
      for (std::size_t i = 0; i < n; ++i) overlap += std::conj(u[i]) * v[i];
      for (std::size_t i = 0; i < n; ++i) v[i] -= overlap * u[i];
    }
    double norm = 0.0;
    for (const Complex& value : v) norm += std::norm(value);
    norm = std::sqrt(norm);
    if (norm < 1e-8) {
      continue;  // duplicate of an already-kept pair partner
    }
    for (Complex& value : v) value /= norm;
    result.eigenvalues.push_back(real_result.eigenvalues[j]);
    kept.push_back(std::move(v));
  }
  NDFT_REQUIRE(kept.size() == n, "heev: failed to fold embedded eigenpairs");
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = kept[j][i];
    }
  }
  return result;
}

SyevdCost syevd_cost(std::size_t n) noexcept {
  const auto cubic = static_cast<Flops>(n) * n * n;
  return {cubic * 22 / 3, 3ull * n * n * sizeof(double)};
}

void linalg_timer_reset() noexcept { tl_linalg_ms = 0.0; }

double linalg_timer_ms() noexcept { return tl_linalg_ms; }

void mirror_upper(RealMatrix& symmetric) {
  const std::size_t n = symmetric.rows();
  NDFT_REQUIRE(symmetric.cols() == n, "mirror_upper: matrix must be square");
  parallel_for(0, n, parallel_grain(n), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        symmetric(i, j) = symmetric(j, i);
      }
    }
  });
}

double eigen_residual(const RealMatrix& symmetric,
                      const EigenResult& result) {
  const std::size_t n = symmetric.rows();
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double value = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        value += symmetric(i, k) * result.eigenvectors(k, j);
      }
      value -= result.eigenvalues[j] * result.eigenvectors(i, j);
      sum += value * value;
    }
  }
  return std::sqrt(sum);
}

}  // namespace ndft::dft
