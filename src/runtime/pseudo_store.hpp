#pragma once
// Pseudopotential data organisation (paper Sections III-B and IV-B).
//
// Replicated layout: every worker process keeps a complete copy of the
// per-atom pseudopotential dataset — the traditional approach whose
// footprint grows linearly with the process count and OOMs NDP systems
// (Table I).
//
// Shared-block layout (the NDFT optimization): the dataset is cut into
// per-atom blocks distributed across the stacks; each NDP process keeps
// only its local atoms plus index entries for the rest, and reads remote
// blocks through the Table II shared-memory API. The CPU-side ranks of
// the hybrid machine keep classic replicas (there are few of them), which
// is why NDFT's total footprint lands near the CPU baseline's (the
// paper's "1.08x of CPU execution").

#include "dft/workload.hpp"

namespace ndft::runtime {

/// Data layout choices.
enum class PseudoLayout {
  kReplicated,   ///< per-process full copies (baseline)
  kSharedBlock,  ///< NDFT's distributed blocks + indices
};

/// Footprint of pseudopotential data on one machine.
struct PseudoFootprint {
  Bytes total = 0;        ///< all processes together
  Bytes per_process = 0;  ///< the largest single process's share
  Bytes capacity = 0;     ///< the machine's memory capacity

  /// Fraction of machine memory consumed.
  double fraction() const noexcept {
    return capacity == 0 ? 0.0
                         : static_cast<double>(total) /
                               static_cast<double>(capacity);
  }
  /// True when the data cannot fit (the paper's OOM condition).
  bool out_of_memory() const noexcept { return total > capacity; }
};

/// Process-count configuration of the three machines (Section V).
struct ProcessConfig {
  unsigned cpu_processes = 24;  ///< 2x 12-core Xeon baseline
  /// NDP worker processes. The paper does not state its count; one worker
  /// per NDP unit on half the mesh (64) lands the replication ratio near
  /// the 2.4-2.6x that Table I implies versus the 24 CPU ranks.
  unsigned ndp_processes = 64;
  unsigned stacks = 16;
};

/// Computes footprints and sharing traffic for a workload.
class PseudoStore {
 public:
  PseudoStore(const dft::Workload& workload, const ProcessConfig& processes)
      : workload_(&workload), processes_(processes) {}

  /// One complete dataset copy (all atoms).
  Bytes copy_bytes() const { return workload_->pseudo_copy_bytes(); }

  /// Footprint of the given layout on the NDP-only machine.
  PseudoFootprint on_ndp(PseudoLayout layout, Bytes capacity) const;

  /// Footprint on the CPU baseline (always replicated: the paper only
  /// applies the shared-block design to the NDP side).
  PseudoFootprint on_cpu(Bytes capacity) const;

  /// Footprint of the full NDFT co-design on the CPU-NDP machine:
  /// CPU ranks keep replicas, the NDP side holds one distributed copy
  /// plus per-process indices and per-stack SPM staging.
  PseudoFootprint on_ndft(Bytes capacity) const;

  /// Mesh bytes needed per iteration to fetch non-local blocks.
  /// Hierarchical mode fetches each remote block once per stack (the
  /// arbiter coalesces its 8 units); flat mode fetches once per process.
  Bytes sharing_traffic_bytes(bool hierarchical) const;

  const ProcessConfig& processes() const noexcept { return processes_; }

 private:
  const dft::Workload* workload_;
  ProcessConfig processes_;
};

}  // namespace ndft::runtime
