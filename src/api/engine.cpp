#include "api/engine.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <new>
#include <numbers>
#include <thread>

#include "common/fault.hpp"
#include "common/kernel_trace.hpp"
#include "common/thread_pool.hpp"
#include "dft/fft.hpp"
#include "dft/kpoints.hpp"
#include "dft/lattice.hpp"
#include "dft/linalg.hpp"
#include "dft/pseudopotential.hpp"
#include "dft/spectrum.hpp"
#include "runtime/calibrate.hpp"
#include "runtime/sca.hpp"

namespace ndft::api {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

constexpr double kHaPerRy = 0.5;
constexpr double kEvPerHa = 27.211386;

// ------------------------------------------------------------- executors
// Each executor wraps the existing free-function internals and distills
// the outcome into the serializable payload.

ScfPayload execute_scf(const ScfJob& job) {
  const dft::Crystal crystal = dft::Crystal::silicon_supercell(job.atoms);
  const dft::PlaneWaveBasis basis(crystal, job.ecut_ry * kHaPerRy);
  const dft::ScfResult scf = dft::solve_scf(basis, job.scf);

  ScfPayload payload;
  payload.atoms = job.atoms;
  payload.basis_size = basis.size();
  payload.grid_points = basis.fft_size();
  payload.converged = scf.converged;
  payload.iterations = scf.history.size();
  if (!scf.history.empty()) {
    payload.total_energy_ha = scf.history.back().total_energy_ha;
    payload.gap_ev = scf.history.back().gap_ev;
    payload.final_residual = scf.history.back().density_residual;
  }
  payload.electron_count = scf.electron_count(basis);
  payload.residual_history.reserve(scf.history.size());
  payload.energy_history.reserve(scf.history.size());
  for (const dft::ScfStep& step : scf.history) {
    payload.residual_history.push_back(step.density_residual);
    payload.energy_history.push_back(step.total_energy_ha);
  }
  return payload;
}

const char* sampling_payload_name(BandStructureJob::Sampling sampling) {
  switch (sampling) {
    case BandStructureJob::Sampling::kPath: return "path";
    case BandStructureJob::Sampling::kMonkhorstPack: return "monkhorst_pack";
    case BandStructureJob::Sampling::kExplicit: return "explicit";
  }
  return "?";
}

BandStructurePayload execute_band_structure(const BandStructureJob& job) {
  const dft::Crystal crystal =
      job.atoms == 0 ? dft::silicon_primitive()
                     : dft::Crystal::silicon_supercell(job.atoms);
  const dft::PlaneWaveBasis basis(crystal, job.ecut_ry * kHaPerRy);
  const std::vector<dft::KPoint> path = band_job_kpoints(job, crystal);
  const std::vector<dft::BandsAtK> structure =
      dft::band_structure(basis, path, job.bands);
  const dft::GapSummary gap = dft::find_gap(structure, job.valence_bands);

  BandStructurePayload payload;
  payload.atoms = crystal.atom_count();
  payload.sampling = sampling_payload_name(job.sampling);
  payload.basis_size = basis.size();
  payload.path.reserve(structure.size());
  for (const dft::BandsAtK& at_k : structure) {
    BandsAtKPayload point;
    point.label = at_k.kpoint.label;
    point.weight = at_k.kpoint.weight;
    point.k[0] = at_k.kpoint.k.x;
    point.k[1] = at_k.kpoint.k.y;
    point.k[2] = at_k.kpoint.k.z;
    point.energies_ha = at_k.energies_ha;
    payload.path.push_back(std::move(point));
  }
  payload.vbm_ha = gap.vbm_ha;
  payload.cbm_ha = gap.cbm_ha;
  payload.vbm_label = gap.vbm_label;
  payload.cbm_label = gap.cbm_label;
  payload.indirect_gap_ev = gap.indirect_gap_ev();
  payload.band_energy_ha = gap.band_energy_ha;
  payload.weight_sum = gap.weight_sum;
  // Direct gap at the zone centre: the labelled path point, or the
  // unlabelled k == 0 point an odd Monkhorst-Pack grid contains.
  for (const dft::BandsAtK& at_k : structure) {
    const bool is_gamma =
        at_k.kpoint.label == "Gamma" || at_k.kpoint.k.norm2() < 1e-20;
    if (is_gamma && at_k.energies_ha.size() > job.valence_bands) {
      payload.direct_gap_gamma_ev =
          (at_k.energies_ha[job.valence_bands] -
           at_k.energies_ha[job.valence_bands - 1]) * kEvPerHa;
      break;
    }
  }
  return payload;
}

LrtddftPayload execute_lrtddft(const LrtddftJob& job) {
  const dft::Crystal crystal = dft::Crystal::silicon_supercell(job.atoms);
  const dft::PlaneWaveBasis basis(crystal, job.ecut_ry * kHaPerRy);
  const std::size_t bands =
      2 * job.atoms + std::max<std::size_t>(8, job.config.conduction_window);
  const dft::GroundState ground = dft::solve_epm(basis, bands);

  LrtddftPayload payload;
  payload.atoms = job.atoms;
  payload.basis_size = basis.size();
  const auto dims = basis.fft_dims();
  for (std::size_t i = 0; i < 3; ++i) payload.grid_dims[i] = dims[i];
  payload.ground_gap_ev = ground.band_gap_ev();
  payload.valence_bands = ground.valence_bands;

  // Nonlocal pseudopotential expectation on the lowest orbital
  // (Algorithm 1's update loop, one application).
  const dft::KbProjectors projectors(basis);
  payload.projector_count = projectors.count();
  std::vector<dft::Complex> psi(basis.size());
  for (std::size_t i = 0; i < basis.size(); ++i) {
    psi[i] = dft::Complex{ground.orbitals(i, 0), 0.0};
  }
  std::vector<dft::Complex> v_psi;
  {
    // One trace event for the projector application (the workload
    // model's Pseudopotential kernel): ~8 flops per projector-coefficient
    // pair for the two complex inner loops.
    TraceRegion region(KernelClass::kPseudopotential, "nonlocal");
    region.set_dims(projectors.count(), basis.size(), 0);
    region.add_work(
        8ull * projectors.count() * basis.size(),
        2ull * projectors.count() * basis.size() * sizeof(dft::Complex));
    region.set_io(basis.size() * sizeof(dft::Complex),
                  basis.size() * sizeof(dft::Complex));
    projectors.apply(psi, v_psi);
  }
  dft::Complex expectation{};
  for (std::size_t i = 0; i < basis.size(); ++i) {
    expectation += std::conj(psi[i]) * v_psi[i];
  }
  payload.nonlocal_expectation_ha = expectation.real();

  const dft::LrTddftResult result =
      dft::solve_lrtddft(basis, ground, job.config);
  payload.pair_count = result.pair_count;
  payload.excitations_ha = result.excitations_ha;
  payload.counts.reserve(result.counts.size());
  for (const auto& [cls, count] : result.counts) {
    KernelCountPayload entry;
    entry.cls = cls;
    entry.flops = count.flops;
    entry.bytes = count.bytes;
    payload.counts.push_back(entry);
  }
  if (job.oscillator_strengths) {
    for (const dft::OscillatorLine& line :
         dft::oscillator_strengths(basis, ground, job.config)) {
      payload.lines.push_back({line.energy_ev, line.strength});
    }
  }
  return payload;
}

/// Distills a RunReport into the serializable simulation payload (shared
/// by SimulateJob and the CoDesignJob replay).
SimulatePayload simulate_payload_from(const core::RunReport& report) {
  SimulatePayload payload;
  payload.mode = report.mode;
  payload.atoms = report.dims.atoms;
  payload.pairs = report.dims.pairs;
  payload.grid_points = report.dims.grid_points;
  payload.basis_size = report.dims.basis_size;
  payload.kernels.reserve(report.kernels.size());
  for (const core::KernelTime& k : report.kernels) {
    payload.kernels.push_back({k.name, k.cls, k.device, k.time_ps});
  }
  payload.total_ps = report.total_ps();
  payload.sched_overhead_ps = report.sched_overhead_ps;
  payload.memory_energy_mj = report.memory_energy_mj;
  payload.mesh_bytes = report.mesh_bytes;
  payload.sharing_bytes = report.sharing_bytes;
  payload.pseudo_total = report.pseudo.total;
  payload.pseudo_per_process = report.pseudo.per_process;
  payload.pseudo_capacity = report.pseudo.capacity;
  payload.pseudo_oom = report.pseudo.out_of_memory();
  payload.stats = report.stats;
  return payload;
}

/// The simulator-emitted counterpart of a measured kernel trace: one
/// "ndft.kernel_trace.v1" event per simulated kernel, carrying the
/// analytic flop/byte tallies from the workload model and the *simulated*
/// time as host_ms (1 ms per 1e9 ps). Stage names "sim[cpu]" / "sim[ndp]"
/// / "sim[gpu]" mark the trace as simulator-born while keeping it
/// consumable by everything that eats measured traces (CoDesignJob,
/// runtime::AdaptiveScheduler::record_trace).
KernelTrace trace_from_report(const dft::Workload& workload,
                              const core::RunReport& report) {
  KernelTrace trace;
  trace.atoms = report.dims.atoms;
  trace.basis_size = report.dims.basis_size;
  trace.grid_points = report.dims.grid_points;
  trace.pool_threads = 0;  // no host pool ran these kernels
  trace.events.reserve(report.kernels.size());
  for (std::size_t i = 0; i < report.kernels.size(); ++i) {
    const core::KernelTime& timed = report.kernels[i];
    TraceEvent event;
    event.cls = timed.cls;
    event.name = timed.name;
    switch (timed.device) {
      case DeviceKind::kNdp: event.stage = "sim[ndp]"; break;
      case DeviceKind::kGpu: event.stage = "sim[gpu]"; break;
      default: event.stage = "sim[cpu]"; break;
    }
    // run paths emit one KernelTime per workload kernel, in order.
    if (i < workload.kernels.size()) {
      const dft::KernelWork& work = workload.kernels[i];
      event.flops = work.flops;
      event.bytes = work.l1_bytes;
      event.input_bytes = work.input_bytes;
      event.output_bytes = work.output_bytes;
    }
    event.host_ms = static_cast<double>(timed.time_ps) * 1e-9;
    trace.events.push_back(std::move(event));
  }
  return trace;
}

/// Distills a schedule into the serializable plan payload (shared by
/// PlanJob and the CoDesignJob replay).
PlanPayload plan_payload_from(const dft::Workload& workload,
                              const runtime::Sca& sca,
                              const runtime::ExecutionPlan& plan,
                              std::size_t atoms,
                              runtime::Granularity granularity) {
  PlanPayload payload;
  payload.atoms = atoms;
  payload.granularity = granularity;
  payload.placements.reserve(plan.placements.size());
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    const dft::KernelWork& kernel = workload.kernels[i];
    const runtime::Placement& placement = plan.placements[i];
    const runtime::KernelAnalysis analysis = sca.analyze(kernel);
    PlacementPayload entry;
    entry.kernel = kernel.name;
    entry.cls = kernel.cls;
    entry.device = placement.device;
    entry.crossing = placement.crossing;
    entry.est_time_ps = placement.est_time_ps;
    entry.transfer_in_ps = placement.transfer_in_ps;
    entry.switch_in_ps = placement.switch_in_ps;
    entry.arithmetic_intensity = analysis.arithmetic_intensity;
    entry.est_cpu_ps = analysis.est_cpu_ps;
    entry.est_ndp_ps = analysis.est_ndp_ps;
    payload.placements.push_back(std::move(entry));
  }
  payload.est_total_ps = plan.est_total_ps;
  payload.est_overhead_ps = plan.est_overhead_ps;
  payload.crossings = plan.crossings;
  return payload;
}

SimulatePayload execute_simulate(const SimulateJob& job,
                                 const core::NdftSystem& shared_system,
                                 const core::SystemConfig& base_config,
                                 std::optional<KernelTrace>& trace_out) {
  // The engine's machine template covers the common case; a per-job
  // sampling override or machine document builds a one-shot system from
  // the same base config.
  const core::NdftSystem* system = &shared_system;
  std::unique_ptr<core::NdftSystem> scoped;
  if (job.sampled_ops != 0 || job.machine) {
    core::SystemConfig config = base_config;
    if (job.sampled_ops != 0) {
      config.sampled_ops_per_kernel = job.sampled_ops;
    }
    if (job.machine) {
      // Already validated; from_json cannot throw here.
      config.ndp = ndp::NdpSystemConfig::from_json(*job.machine);
      config.ndp_profile =
          core::ndp_profile_from(config.ndp, base_config.ndp_profile);
    }
    scoped = std::make_unique<core::NdftSystem>(config);
    system = scoped.get();
  }

  const dft::Workload workload = system->workload_for(job.atoms);
  const core::RunReport report = system->run(workload, job.mode);
  if (job.record_trace) {
    trace_out = trace_from_report(workload, report);
  }
  return simulate_payload_from(report);
}

PlanPayload execute_plan(const PlanJob& job,
                         const core::NdftSystem& system,
                         const core::SystemConfig& base_config,
                         const runtime::ProfileStore* profile_store,
                         std::size_t pool_threads) {
  runtime::DeviceProfile cpu_profile = base_config.cpu_profile;
  runtime::DeviceProfile ndp_profile = base_config.ndp_profile;
  if (job.machine) {
    ndp_profile = core::ndp_profile_from(
        ndp::NdpSystemConfig::from_json(*job.machine), ndp_profile);
  }
  bool used_stored_profile = false;
  if (!job.profile_override.empty()) {
    cpu_profile = job.profile_override[0];
    ndp_profile = job.profile_override[1];
  } else if (profile_store != nullptr) {
    // No explicit what-if profiles: default to the calibrated beliefs a
    // previous co-design run persisted for this build/host/pool context.
    if (const std::optional<runtime::DeviceProfile> stored =
            profile_store->get_cpu(
                runtime::ProfileKey::current(pool_threads))) {
      cpu_profile = *stored;
      used_stored_profile = true;
    }
  }
  const dft::Workload workload = system.workload_for(job.atoms);
  const runtime::Sca sca(cpu_profile, ndp_profile);
  const runtime::CostModel cost(cpu_profile, ndp_profile);
  const runtime::Scheduler scheduler(sca, cost);
  const runtime::ExecutionPlan plan =
      scheduler.plan(workload, job.granularity);
  PlanPayload payload =
      plan_payload_from(workload, sca, plan, job.atoms, job.granularity);
  payload.used_stored_profile = used_stored_profile;
  return payload;
}

CoDesignPayload execute_codesign(const CoDesignJob& job,
                                 const core::NdftSystem& shared_system,
                                 const core::SystemConfig& base_config,
                                 runtime::ProfileStore* profile_store,
                                 std::size_t pool_threads) {
  // A machine document re-bases both the simulated leg and the NDP-side
  // scheduler beliefs.
  const core::NdftSystem* system = &shared_system;
  std::unique_ptr<core::NdftSystem> scoped;
  runtime::DeviceProfile ndp_profile = base_config.ndp_profile;
  if (job.machine) {
    core::SystemConfig config = base_config;
    config.ndp = ndp::NdpSystemConfig::from_json(*job.machine);
    config.ndp_profile =
        core::ndp_profile_from(config.ndp, base_config.ndp_profile);
    ndp_profile = config.ndp_profile;
    scoped = std::make_unique<core::NdftSystem>(config);
    system = scoped.get();
  }
  const dft::Workload workload = system->workload_from_trace(job.trace);

  CoDesignPayload payload;
  payload.trace_events = job.trace.events.size();
  payload.trace_atoms = job.trace.atoms;
  payload.trace_flops = job.trace.total_flops();
  payload.trace_bytes = job.trace.total_bytes();
  payload.trace_host_ms = job.trace.total_host_ms();
  payload.trace_truncated = job.trace.truncated;

  // The scheduler prices the CPU side from the machine the trace was
  // measured on (when calibration is requested and possible); the NDP
  // side keeps the engine's configured beliefs.
  runtime::DeviceProfile cpu_profile = base_config.cpu_profile;
  if (job.calibrate) {
    const runtime::CpuCalibration calibration =
        runtime::calibrate_cpu(job.trace, cpu_profile);
    cpu_profile = calibration.profile;
    payload.calibration.calibrated = calibration.calibrated;
    payload.calibration.peak_gflops = cpu_profile.peak_gflops;
    payload.calibration.dram_gbps = cpu_profile.dram_gbps;
    payload.calibration.blocked_efficiency =
        cpu_profile.blocked_compute_efficiency;
    payload.calibration.max_ratio = calibration.max_ratio;
    payload.calibration.fitted_events = calibration.fitted_events;
    payload.calibration.fitted_ms = calibration.fitted_ms;
    if (calibration.calibrated && profile_store != nullptr) {
      // Persist the fitted beliefs so later PlanJobs on this build/host
      // start from measured reality instead of the Table-III defaults.
      profile_store->put_cpu(runtime::ProfileKey::current(pool_threads),
                             cpu_profile);
    }
  }

  const runtime::Sca sca(cpu_profile, ndp_profile);
  const runtime::CostModel cost(cpu_profile, ndp_profile);
  const runtime::Scheduler scheduler(sca, cost);
  const runtime::ExecutionPlan plan =
      scheduler.plan(workload, job.granularity);
  payload.plan = plan_payload_from(workload, sca, plan, job.trace.atoms,
                                   job.granularity);
  if (job.simulate) {
    payload.simulate =
        simulate_payload_from(system->run_planned(workload, plan));
  }
  return payload;
}

/// True when the request asked for its kernel trace to be recorded.
bool wants_trace(const JobRequest& request) noexcept {
  if (const auto* job = std::get_if<ScfJob>(&request)) {
    return job->record_trace;
  }
  if (const auto* job = std::get_if<BandStructureJob>(&request)) {
    return job->record_trace;
  }
  if (const auto* job = std::get_if<LrtddftJob>(&request)) {
    return job->record_trace;
  }
  return false;
}

/// Prices one event-shaped kernel through the same trace-conversion and
/// SCA machinery the co-design replay uses, so the queue's priority key
/// and the planner's estimates share one cost model instead of drifting
/// as two hand-maintained formula sets.
TimePs price_event(const runtime::Sca& sca, KernelClass cls, Flops flops,
                   Bytes bytes, std::uint64_t dim) {
  TraceEvent event;
  event.cls = cls;
  event.flops = flops;
  event.bytes = bytes;
  event.dims[0] = dim;
  event.dims[1] = dim;
  return sca.estimate(dft::kernel_work_from_event(event), sca.cpu());
}

/// The full-spectrum eigensolve on an n x n matrix (the shared
/// dft::syevd_cost tally).
TimePs price_syevd(const runtime::Sca& sca, std::size_t n) {
  const dft::SyevdCost cost = dft::syevd_cost(n);
  return price_event(sca, KernelClass::kSyevd, cost.flops, cost.bytes, n);
}

/// The lowest-m partial eigensolve (dft::syevd_partial_cost), which is
/// what the rewired low-band consumers actually run.
TimePs price_syevd_partial(const runtime::Sca& sca, std::size_t n,
                           std::size_t m) {
  const dft::SyevdCost cost = dft::syevd_partial_cost(n, std::min(m, n));
  return price_event(sca, KernelClass::kSyevd, cost.flops, cost.bytes, n);
}

/// Summed CPU roofline estimate of a workload's kernels.
TimePs price_workload(const runtime::Sca& sca, const dft::Workload& w) {
  TimePs total = 0;
  for (const dft::KernelWork& kernel : w.kernels) {
    total += sca.estimate(kernel, sca.cpu());
  }
  return total;
}

/// Submission-time cost estimate keying the priority queue: the CPU-side
/// SCA estimate of the job's dominant kernels (the analytic workload
/// model where it applies, measured time for trace replays). Only the
/// relative magnitudes matter — a wrong estimate reorders the queue but
/// cannot break it. Plan jobs are effectively free and drain first.
TimePs estimate_cost_ps(const JobRequest& request,
                        const core::SystemConfig& config) noexcept {
  // The estimator runs at submit(), BEFORE validation, so request fields
  // may be arbitrary garbage. Cutoffs outside this sane window would
  // push the closed-form basis sizes past the double->size_t cast range
  // (undefined behaviour, not catchable); such jobs cost 0 and surface
  // immediately, where validation rejects or execution prices them.
  const auto sane_ecut = [](double ecut_ry) {
    return ecut_ry > 0.0 && ecut_ry < 1e4;
  };
  const auto sane_atoms = [](std::size_t atoms) {
    return atoms <= (std::size_t{1} << 24);
  };
  try {
    const runtime::Sca sca(config.cpu_profile, config.ndp_profile);
    if (const auto* job = std::get_if<ScfJob>(&request)) {
      if (!sane_ecut(job->ecut_ry) || !sane_atoms(job->atoms)) return 0;
      // Per iteration: the dense eigensolve plus the valence density
      // FFTs, at the closed-form basis/grid sizes for the cutoff.
      const dft::SystemDims dims =
          dft::SystemDims::silicon(job->atoms, job->ecut_ry * 0.5);
      const TimePs fft = price_event(
          sca, KernelClass::kFft, dft::fft_flops(dims.grid_points),
          4ull * dims.grid_points * sizeof(dft::Complex), dims.grid_points);
      return job->scf.max_iterations *
             (price_syevd(sca, dims.basis_size) +
              (2 * job->atoms + 3) * fft);
    }
    if (const auto* job = std::get_if<BandStructureJob>(&request)) {
      if (!sane_ecut(job->ecut_ry) || !sane_atoms(job->atoms)) return 0;
      // Basis at the cutoff, N_G ~ V (2E)^{3/2}/(6 pi^2), for the
      // requested cell (primitive: a0^3/4; supercell: a0^3/8 per atom);
      // one partial eigensolve per k-point.
      const double a0 = dft::kSiliconLatticeBohr;
      const double volume = a0 * a0 * a0 *
                            (job->atoms == 0
                                 ? 0.25
                                 : static_cast<double>(job->atoms) / 8.0);
      const double kmax = std::sqrt(job->ecut_ry);  // sqrt(2 * ecut_ha)
      const auto ng = static_cast<std::size_t>(
          volume * kmax * kmax * kmax /
          (6.0 * std::numbers::pi * std::numbers::pi));
      std::uint64_t kpoints = 4ull * job->segments + 1;
      if (job->sampling == BandStructureJob::Sampling::kExplicit) {
        kpoints = std::min<std::uint64_t>(job->kpoints.size(), 1u << 20);
      } else if (job->sampling ==
                 BandStructureJob::Sampling::kMonkhorstPack) {
        kpoints = 1;
        for (const unsigned n : job->mp_grid) {
          // Bound each factor: the estimator runs before validation, and
          // a garbage grid must not overflow the product.
          kpoints *= std::min<std::uint64_t>(n, 1u << 20);
        }
        // Time-reversal folding halves the points actually solved.
        kpoints = std::min<std::uint64_t>((kpoints + 1) / 2, 1u << 20);
      }
      return kpoints * price_syevd_partial(sca, ng, job->bands);
    }
    if (const auto* job = std::get_if<LrtddftJob>(&request)) {
      if (!sane_ecut(job->ecut_ry) || !sane_atoms(job->atoms)) return 0;
      // The analytic iteration evaluated at the job's excitation window,
      // plus the EPM ground-state eigensolve it sits on.
      dft::SystemDims dims =
          dft::SystemDims::silicon(job->atoms, job->ecut_ry * 0.5);
      dims.valence_window =
          job->config.valence_window == 0
              ? dims.valence_bands
              : std::min(job->config.valence_window, dims.valence_bands);
      dims.conduction_window = job->config.conduction_window;
      dims.pairs = dims.valence_window * dims.conduction_window;
      dims.subspace = 2 * dims.pairs;  // heev's real embedding
      return price_syevd(sca, dims.basis_size) +
             price_workload(sca, dft::Workload::lrtddft_iteration(dims));
    }
    if (const auto* job = std::get_if<SimulateJob>(&request)) {
      if (!sane_atoms(job->atoms)) return 0;
      // Proxy: the analytic iteration's CPU roofline estimate (scales
      // with the system size like the simulation's own cost does).
      return price_workload(sca, dft::Workload::lrtddft_iteration(
                                     dft::SystemDims::silicon(job->atoms)));
    }
    if (const auto* job = std::get_if<CoDesignJob>(&request)) {
      // Replays cost roughly what the trace took to record, plus as much
      // again when the timing simulation is requested.
      const double ms = job->trace.total_host_ms();
      return static_cast<TimePs>(ms * (job->simulate ? 2.0 : 1.0) *
                                 static_cast<double>(kPsPerMs));
    }
  } catch (...) {
    // Invalid dimensions and similar: fall through to zero cost so the
    // job surfaces (and fails validation) quickly.
  }
  return 0;  // PlanJob and anything unpriceable: effectively free
}

}  // namespace

// -------------------------------------------------------------- JobHandle

std::uint64_t JobHandle::id() const {
  NDFT_REQUIRE(valid(), "empty job handle");
  return state_->id;
}

JobStatus JobHandle::status() const {
  NDFT_REQUIRE(valid(), "empty job handle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status;
}

bool JobHandle::cancel() {
  NDFT_REQUIRE(valid(), "empty job handle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->terminal) return false;
  if (state_->status == JobStatus::kQueued) {
    // Still queued: terminal immediately. This is the only kQueued ->
    // kCancelled transition (guarded by the state mutex), so counting
    // here — and only here — makes double-counting impossible no matter
    // how cancel races the pop/start/drain/destructor paths.
    state_->status = JobStatus::kCancelled;
    state_->result.status = JobStatus::kCancelled;
    state_->result.error = ErrorKind::kCancelled;
    state_->result.error_message = "job cancelled while queued";
    state_->result.timings.queue_ms =
        ms_between(state_->submitted_at, Clock::now());
    state_->result.timings.total_ms = state_->result.timings.queue_ms;
    state_->terminal = true;
    if (state_->cancelled_counter != nullptr) {
      state_->cancelled_counter->fetch_add(1);
    }
    state_->cv.notify_all();
    return true;
  }
  // Running: request cooperative cancellation; the job observes it at
  // its next stage boundary and execute_queued() publishes (and counts)
  // the kCancelled result. Idempotent while the job is still running.
  state_->cancel.request_cancel();
  return true;
}

const JobResult& JobHandle::wait() const {
  NDFT_REQUIRE(valid(), "empty job handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->terminal; });
  return state_->result;
}

bool JobHandle::wait_for(double timeout_ms) const {
  NDFT_REQUIRE(valid(), "empty job handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  if (timeout_ms <= 0.0) return state_->terminal;
  return state_->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [&] { return state_->terminal; });
}

// ----------------------------------------------------------------- Engine

Engine::Engine(EngineConfig config)
    : config_(std::move(config)), system_(config_.system) {
  if (!config_.profile_store_path.empty()) {
    profile_store_ =
        std::make_unique<runtime::ProfileStore>(config_.profile_store_path);
  }
  // Arm the fault-injection layer: the explicit config wins, the
  // NDFT_FAULTS environment variable is the fallback, and an empty spec
  // leaves the process-wide state alone (so engines without one do not
  // clobber a spec another engine installed).
  std::string spec_text = config_.fault_spec;
  if (spec_text.empty()) {
    if (const char* env = std::getenv("NDFT_FAULTS")) spec_text = env;
  }
  if (!spec_text.empty()) {
    fault_install(FaultSpec::parse(spec_text));  // throws on bad specs
    installed_faults_ = true;
  }
  // Warm the shared kernel pool so the first job does not pay thread
  // startup; the FFT plan cache warms lazily per grid size.
  (void)ThreadPool::instance();
  for (std::size_t i = 0; i < config_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

Engine::~Engine() {
  // Cancel everything still queued, then stop the dispatchers once the
  // in-flight jobs finish. Handles stay valid: their state is shared.
  std::deque<std::shared_ptr<detail::JobState>> orphaned;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    orphaned.swap(queue_);
    fifo_.clear();
  }
  for (const auto& state : orphaned) {
    // cancel() counts the kQueued -> kCancelled transition itself;
    // orphans the user already cancelled were counted then, so the
    // sweep cannot double-count them.
    JobHandle(state).cancel();
  }
  queue_cv_.notify_all();
  for (std::thread& dispatcher : dispatchers_) {
    dispatcher.join();
  }
  if (installed_faults_) fault_clear();
}

const core::SystemConfig& Engine::system_config() const noexcept {
  return system_.config();
}

std::size_t Engine::pool_threads() const noexcept {
  return ThreadPool::instance().threads();
}

JobResult Engine::run(const JobRequest& request) {
  const Clock::time_point start = Clock::now();
  // Synchronous runs have no handle to cancel through, but the deadline
  // still applies, measured from execution start.
  const CancelToken token = CancelToken::create();
  const double deadline_ms = job_deadline_ms(request);
  if (deadline_ms > 0.0) {
    token.set_deadline(start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       deadline_ms)));
  }
  JobResult result = execute(request, token);
  result.engine.job_id = next_job_id_.fetch_add(1);
  result.timings.queue_ms = 0.0;
  result.timings.total_ms = ms_between(start, Clock::now());
  submitted_.fetch_add(1);
  completed_.fetch_add(1);
  return result;
}

JobHandle Engine::submit(JobRequest request) {
  auto state = std::make_shared<detail::JobState>();
  state->id = next_job_id_.fetch_add(1);
  state->request = std::move(request);
  state->submitted_at = Clock::now();
  state->est_cost_ps = estimate_cost_ps(state->request, config_.system);
  state->cancel = CancelToken::create();
  state->cancelled_counter = &cancelled_;
  // The deadline clock starts at submission: time spent queued counts
  // against the budget (that is what a service-level deadline means).
  const double deadline_ms = job_deadline_ms(state->request);
  if (deadline_ms > 0.0) {
    state->cancel.set_deadline(
        state->submitted_at +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms)));
  }
  // Engine metadata the cancel path also needs, stamped up front.
  state->result.engine.job_id = state->id;
  state->result.engine.kind = job_kind(state->request);
  state->result.engine.pool_threads = pool_threads();
  state->result.engine.dispatch_threads = config_.dispatch_threads;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    NDFT_REQUIRE(!stopping_, "engine is shutting down");
    NDFT_REQUIRE(queue_.size() < config_.max_pending,
                 "engine queue is full");
    // Cost-aware ordering: cheapest job first, FIFO (by id) among equal
    // estimates. Insertion keeps the deque sorted so the pop side stays
    // front-only for the dispatchers and drain().
    const auto before = [](const std::shared_ptr<detail::JobState>& a,
                           const std::shared_ptr<detail::JobState>& b) {
      if (a->est_cost_ps != b->est_cost_ps) {
        return a->est_cost_ps < b->est_cost_ps;
      }
      return a->id < b->id;
    };
    queue_.insert(std::upper_bound(queue_.begin(), queue_.end(), state,
                                   before),
                  state);
    fifo_.push_back(state);
  }
  submitted_.fetch_add(1);
  queue_cv_.notify_one();
  return JobHandle(state);
}

std::vector<JobHandle> Engine::submit_batch(
    std::vector<JobRequest> requests) {
  std::vector<JobHandle> handles;
  handles.reserve(requests.size());
  for (JobRequest& request : requests) {
    handles.push_back(submit(std::move(request)));
  }
  return handles;
}

std::shared_ptr<detail::JobState> Engine::pop_next_locked() {
  // Drop submission-order entries already taken off the queue; what
  // remains at the front is the oldest pending job, found in O(1).
  while (!fifo_.empty() && fifo_.front()->dequeued) {
    fifo_.pop_front();
  }
  // Cheapest-first (the queue is sorted), unless the oldest pending job
  // has aged past the starvation limit — then it runs next regardless of
  // cost, so heavy jobs make progress under sustained cheap traffic (the
  // linear find only runs on that rare aged path).
  auto next = queue_.begin();
  if (!fifo_.empty() && fifo_.front() != *next &&
      ms_between(fifo_.front()->submitted_at, Clock::now()) >=
          config_.starvation_limit_ms) {
    next = std::find(queue_.begin(), queue_.end(), fifo_.front());
  }
  std::shared_ptr<detail::JobState> state = std::move(*next);
  queue_.erase(next);
  state->dequeued = true;
  return state;
}

void Engine::retire_in_flight_locked() {
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) {
    idle_cv_.notify_all();
  }
}

void Engine::retire_in_flight() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  retire_in_flight_locked();
}

void Engine::drain() {
  if (config_.dispatch_threads == 0) {
    // Manual mode: the caller's thread is the dispatcher.
    // execute_queued() retires the in-flight count itself.
    for (;;) {
      std::shared_ptr<detail::JobState> state;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (queue_.empty()) break;
        state = pop_next_locked();
        ++in_flight_;
      }
      execute_queued(state);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void Engine::dispatcher_loop() {
  for (;;) {
    std::shared_ptr<detail::JobState> state;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      state = pop_next_locked();
      ++in_flight_;
    }
    // execute_queued() publishes the terminal result and retires the
    // in-flight count atomically (signalling idle_cv_ when drained).
    execute_queued(state);
  }
}

void Engine::execute_queued(const std::shared_ptr<detail::JobState>& state) {
  Clock::time_point started;
  bool cancelled_before_start = false;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->status != JobStatus::kQueued) {
      // Cancelled between pop and start: cancel() made it terminal and
      // already counted it — counting here again was the double-count
      // this path used to have.
      cancelled_before_start = true;
    } else {
      state->status = JobStatus::kRunning;
      state->result.engine.exec_seq = exec_seq_.fetch_add(1) + 1;
      started = Clock::now();
    }
  }
  if (cancelled_before_start) {
    retire_in_flight();
    return;
  }
  JobResult result;
  if (state->cancel.deadline_exceeded()) {
    // Expired while queued: surface without paying for the execution.
    result.engine.kind = job_kind(state->request);
    result.engine.pool_threads = pool_threads();
    result.engine.dispatch_threads = config_.dispatch_threads;
    result.status = JobStatus::kDeadlineExceeded;
    result.error = ErrorKind::kDeadlineExceeded;
    result.error_message = "deadline expired while queued";
  } else {
    result = execute(state->request, state->cancel);
  }
  // Merge: id/kind/exec_seq were stamped on the queued state up front
  // (the cancel path publishes them too), attempts by the retry loop.
  const std::uint32_t attempts = result.engine.attempts;
  result.engine = state->result.engine;
  result.engine.attempts = attempts;
  result.timings.queue_ms = ms_between(state->submitted_at, started);
  result.timings.total_ms = result.timings.queue_ms + result.timings.run_ms;
  if (result.status == JobStatus::kDeadlineExceeded) {
    deadline_expired_.fetch_add(1);
  }
  // Count before publishing: a waiter woken by the notify must already
  // observe this job in jobs_completed() / jobs_cancelled(). A job
  // cancelled mid-run counts as cancelled, not completed, keeping
  // submitted == completed + cancelled an exact invariant.
  if (result.status == JobStatus::kCancelled) {
    cancelled_.fetch_add(1);
  } else {
    completed_.fetch_add(1);
  }
  {
    // Publish and retire under both locks (queue before state, the
    // global order) so the two are atomic to observers: a waiter woken
    // by the notify must not find this job still counted by
    // jobs_running(), and drain() must not return before the terminal
    // result is visible through the handle.
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    std::lock_guard<std::mutex> lock(state->mutex);
    state->result = std::move(result);
    state->status = state->result.status;
    state->terminal = true;
    state->cv.notify_all();
    retire_in_flight_locked();
  }
}

JobResult Engine::execute(const JobRequest& request,
                          const CancelToken& token) {
  JobResult result;
  result.engine.kind = job_kind(request);
  result.engine.pool_threads = pool_threads();
  result.engine.dispatch_threads = config_.dispatch_threads;

  std::vector<std::string> errors = validate(request);
  if (!errors.empty()) {
    result.status = JobStatus::kInvalid;
    result.error = ErrorKind::kInvalidRequest;
    result.error_message = "request failed validation";
    result.error_details = std::move(errors);
    return result;
  }

  // Retry loop: transient failures (allocation pressure, simulated
  // device faults) re-execute with capped exponential backoff. The
  // schedule is deterministic — base * 2^(attempt-1), no jitter — so a
  // replayed fault spec replays the same attempt pattern.
  const unsigned max_attempts = std::max(1u, config_.max_attempts);
  double backoff_ms =
      std::max(0.0, config_.retry_backoff_ms);
  double backoff_total_ms = 0.0;
  unsigned attempt = 0;
  for (;;) {
    ++attempt;
    const JobTimings carried = result.timings;  // accumulate run/backoff
    result = execute_once(request, token);
    result.engine.kind = job_kind(request);
    result.engine.pool_threads = pool_threads();
    result.engine.dispatch_threads = config_.dispatch_threads;
    result.engine.attempts = attempt;
    result.timings.run_ms += carried.run_ms;
    if (!is_transient(result.error) || attempt >= max_attempts) break;
    // Don't burn retries on a job that is already doomed: a cancel or
    // expired deadline surfaces as its own status instead.
    if (token.cancel_requested()) {
      result.status = JobStatus::kCancelled;
      result.error = ErrorKind::kCancelled;
      result.error_message = "job cancelled while running";
      break;
    }
    if (token.deadline_exceeded()) {
      result.status = JobStatus::kDeadlineExceeded;
      result.error = ErrorKind::kDeadlineExceeded;
      result.error_message = "job deadline exceeded";
      break;
    }
    retries_.fetch_add(1);
    if (backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_total_ms += backoff_ms;
      backoff_ms = std::min(backoff_ms * 2.0,
                            std::max(0.0, config_.retry_backoff_cap_ms));
    }
  }
  result.timings.backoff_ms = backoff_total_ms;
  if (!result.degraded.empty()) degraded_.fetch_add(1);
  return result;
}

std::size_t Engine::jobs_pending() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  // Cancelled-while-queued jobs are already terminal but stay in queue_
  // until a dispatcher pops (lazy pruning): only count live ones.
  std::size_t pending = 0;
  for (const auto& state : queue_) {
    std::lock_guard<std::mutex> state_lock(state->mutex);
    if (!state->terminal) ++pending;
  }
  return pending;
}

std::size_t Engine::jobs_running() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return in_flight_;
}

JobResult Engine::execute_once(const JobRequest& request,
                               const CancelToken& token) {
  JobResult result;
  result.engine.kind = job_kind(request);
  result.engine.pool_threads = pool_threads();
  result.engine.dispatch_threads = config_.dispatch_threads;

  const Clock::time_point start = Clock::now();
  // The job runs to completion on this thread, so the thread-local linalg
  // tally brackets exactly this job's dense-algebra share — and the
  // trace, cancel and degradation scopes bracket exactly this job.
  dft::linalg_timer_reset();
  const CancelScope cancel_scope(token);
  DegradationScope degradation_scope;
  std::unique_ptr<TraceRecorder> recorder;
  std::unique_ptr<TraceScope> scope;
  if (wants_trace(request)) {
    if (fault_fires("trace.recorder")) {
      // Graceful degradation: a failed recorder downgrades the job to an
      // untraced run instead of failing it.
      note_degradation("trace:recorder_failed");
    } else {
      recorder = std::make_unique<TraceRecorder>();
      scope = std::make_unique<TraceScope>(*recorder);
    }
  }
  try {
    cancel_point();               // cancelled/expired before any work
    fault_point("engine.alloc");  // simulated setup allocation pressure
    if (const auto* job = std::get_if<ScfJob>(&request)) {
      result.scf = execute_scf(*job);
    } else if (const auto* job = std::get_if<BandStructureJob>(&request)) {
      result.band_structure = execute_band_structure(*job);
    } else if (const auto* job = std::get_if<LrtddftJob>(&request)) {
      result.lrtddft = execute_lrtddft(*job);
    } else if (const auto* job = std::get_if<SimulateJob>(&request)) {
      result.simulate =
          execute_simulate(*job, system_, config_.system, result.trace);
    } else if (const auto* job = std::get_if<PlanJob>(&request)) {
      result.plan = execute_plan(*job, system_, config_.system,
                                 profile_store_.get(), pool_threads());
    } else if (const auto* job = std::get_if<CoDesignJob>(&request)) {
      result.codesign = execute_codesign(*job, system_, config_.system,
                                         profile_store_.get(),
                                         pool_threads());
    } else {
      throw NdftError("unhandled job kind");
    }
    result.status = JobStatus::kOk;
  } catch (const CancelledError& error) {
    result.status = JobStatus::kCancelled;
    result.error = ErrorKind::kCancelled;
    result.error_message = error.what();
  } catch (const DeadlineExceededError& error) {
    result.status = JobStatus::kDeadlineExceeded;
    result.error = ErrorKind::kDeadlineExceeded;
    result.error_message = error.what();
  } catch (const FaultInjected& error) {
    // An escaped injected fault classifies by its site's class; the
    // transient kinds feed the retry loop.
    result.status = JobStatus::kFailed;
    switch (error.fault_class()) {
      case FaultClass::kResource:
        result.error = ErrorKind::kTransientResource;
        break;
      case FaultClass::kDevice:
        result.error = ErrorKind::kTransientDevice;
        break;
      default:
        // Solver/trace faults are degradable at their site; one escaping
        // means no fallback existed there — a permanent failure.
        result.error = ErrorKind::kPhysics;
        break;
    }
    result.error_message = error.what();
  } catch (const std::bad_alloc&) {
    result.status = JobStatus::kFailed;
    result.error = ErrorKind::kTransientResource;
    result.error_message = "allocation failure";
  } catch (const NdftError& error) {
    result.status = JobStatus::kFailed;
    result.error = ErrorKind::kPhysics;
    result.error_message = error.what();
  } catch (const std::exception& error) {
    result.status = JobStatus::kFailed;
    result.error = ErrorKind::kInternal;
    result.error_message = error.what();
  }
  scope.reset();
  if (recorder != nullptr && result.status == JobStatus::kOk) {
    result.trace = recorder->take();
  }
  result.degraded = degradation_scope.take();
  result.timings.run_ms = ms_between(start, Clock::now());
  result.timings.linalg_ms = dft::linalg_timer_ms();
  const dft::LinalgStageTimes stages = dft::linalg_stage_times();
  result.timings.reduce_ms = stages.reduce_ms;
  result.timings.tridiag_ms = stages.tridiag_ms;
  result.timings.backtransform_ms = stages.backtransform_ms;
  return result;
}

}  // namespace ndft::api
