#pragma once
// DRAM energy accounting (Micron-power-calculator style): per-operation
// energies applied to the channel's command counters, plus background
// power. Near-data papers live or die on pJ/bit, so the model lets the
// benches compare the CPU's off-chip DDR4 against stack-local HBM2.

#include "common/types.hpp"

namespace ndft::mem {

/// Channel-level energy parameters.
struct DramEnergy {
  double act_pre_nj = 3.0;    ///< one ACT+PRE pair
  double read_nj = 4.0;       ///< one 64 B read burst incl. I/O
  double write_nj = 4.2;      ///< one 64 B write burst incl. I/O
  double refresh_nj = 150.0;  ///< one all-bank refresh
  double background_mw = 150.0;  ///< static power per channel

  /// DDR4 x64 channel (8 devices), board-level I/O: ~20 pJ/bit effective.
  static DramEnergy ddr4();

  /// HBM2 channel: TSV I/O instead of board traces, ~4 pJ/bit effective.
  static DramEnergy hbm2();

  /// Background power including the (time-based) refresh duty cycle, per
  /// channel, given the refresh interval in picoseconds.
  double background_with_refresh_mw(TimePs trefi_ps) const {
    // nJ / ps = kW; convert to mW: * 1e6... nJ/ps = 1e-9 J / 1e-12 s = 1e3 W.
    return background_mw +
           refresh_nj / static_cast<double>(trefi_ps) * 1e6;
  }
};

/// Energy of one channel's activity so far, in nanojoules.
/// `acts`, `reads`, `writes`, `refreshes` are command counts and
/// `elapsed_ps` the wall time for the background term.
double channel_energy_nj(const DramEnergy& energy, double acts,
                         double reads, double writes, double refreshes,
                         TimePs elapsed_ps);

}  // namespace ndft::mem
