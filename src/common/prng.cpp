#include "common/prng.hpp"

#include <cmath>
#include <numbers>

namespace ndft {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64: expands a single seed into well-distributed state words.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Prng::Prng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  // All-zero state would lock the generator; splitmix64 cannot produce it
  // for four consecutive outputs, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Prng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Prng::next_below(std::uint64_t bound) noexcept {
  // Multiply-shift reduction on the high 32 bits; bias is negligible for
  // the bounds used here (working-set line counts). Large bounds fall back
  // to modulo.
  if ((bound >> 32) != 0) {
    return next_u64() % bound;
  }
  const std::uint64_t high = next_u64() >> 32;
  return (high * bound) >> 32;
}

double Prng::next_double() noexcept {
  // 53 high bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Prng::next_normal() noexcept {
  // Box-Muller; discard the second variate to stay stateless.
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Prng::next_bool(double p) noexcept {
  return next_double() < p;
}

}  // namespace ndft
