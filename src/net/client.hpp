#pragma once
// Blocking HTTP/1.1 client for tests, examples, and benches: one
// keep-alive connection per instance, lazily (re)connected, with the
// same parser the server uses. Not thread-safe — give each client
// thread its own instance.

#include <cstdint>
#include <string>

#include "net/http.hpp"
#include "net/socket.hpp"

namespace ndft::net {

class HttpClient {
 public:
  /// Does not connect yet; the first request does.
  HttpClient(std::string host, std::uint16_t port,
             double timeout_ms = 30000.0);

  /// Bearer token attached to every request ("" = none).
  void set_bearer(std::string token) { bearer_ = std::move(token); }

  /// Sends one request and blocks for the response. Reconnects once when
  /// the kept-alive connection turns out to be dead. Throws NdftError on
  /// connect failure, timeout, or an unparseable response.
  HttpResponse request(const std::string& method, const std::string& target,
                       const std::string& body = "",
                       const std::string& content_type = "application/json");

  HttpResponse get(const std::string& target) {
    return request("GET", target);
  }
  HttpResponse post(const std::string& target, const std::string& body) {
    return request("POST", target, body);
  }
  HttpResponse del(const std::string& target) {
    return request("DELETE", target);
  }

  /// Drops the kept-alive connection (next request reconnects).
  void disconnect() { socket_.close(); }

 private:
  HttpResponse round_trip(const std::string& wire);

  std::string host_;
  std::uint16_t port_;
  double timeout_ms_;
  std::string bearer_;
  Socket socket_;
  std::string pipeline_rest_;  // bytes past the previous response
};

}  // namespace ndft::net
