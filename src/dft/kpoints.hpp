#pragma once
// Beyond-Gamma electronic structure: EPM eigenvalues at arbitrary k,
// high-symmetry paths through the Brillouin zone, Monkhorst-Pack grids,
// and the primitive FCC silicon cell (2 atoms) whose unfolded band
// structure is the textbook Cohen-Bergstresser result.
//
// At any k the Hamiltonian H(G,G') = 1/2 |k+G|^2 delta_GG' + V(G-G')
// stays real symmetric (the potential depends only on G-G' and is real
// for the bond-centred geometry), so the same SYEVD path serves the whole
// zone.

#include <string>
#include <vector>

#include "dft/basis.hpp"
#include "dft/epm.hpp"

namespace ndft::dft {

/// A k-point in Cartesian reciprocal coordinates (Bohr^-1) with a label
/// and an integration weight (for grids).
struct KPoint {
  Vec3 k;
  double weight = 1.0;
  std::string label;  ///< nonempty at high-symmetry points
};

/// Eigenvalues at one k-point.
struct BandsAtK {
  KPoint kpoint;
  std::vector<double> energies_ha;  ///< ascending
};

/// The primitive FCC silicon cell: 2 atoms at +/- a0/8 (1,1,1), lattice
/// vectors a0/2 (0,1,1) etc. Band structures on this cell are unfolded
/// (no supercell band folding).
Crystal silicon_primitive();

/// The FCC high-symmetry path L -> Gamma -> X -> K -> Gamma for the
/// conventional lattice constant `a0`, sampled with `segments` points per
/// leg (the X -> K leg runs directly, not via the textbook U|K jump).
/// Both endpoints of every leg carry their high-symmetry labels, so path
/// traces and gap summaries always name the junctions.
std::vector<KPoint> fcc_kpath(double a0, unsigned segments = 12);

/// A Monkhorst-Pack n1 x n2 x n3 grid for `crystal`, weights summing to 1.
std::vector<KPoint> monkhorst_pack(const Crystal& crystal, unsigned n1,
                                   unsigned n2, unsigned n3);

/// Folds a k-set to its time-reversal half: H(-k) and H(k) share a
/// spectrum for the real EPM potential, so each -k partner is dropped and
/// its weight added onto the +k representative (the earlier point in grid
/// order; self-paired points like Gamma keep their weight). Total weight
/// is preserved exactly — partners carry bitwise-negated coordinates on
/// Monkhorst-Pack grids ((2r-n-1)/2n is closed under r -> n-1-r), so the
/// match is exact, not tolerance-based. Points without a partner in the
/// set pass through unchanged.
std::vector<KPoint> fold_time_reversal(const std::vector<KPoint>& grid);

/// EPM eigenvalues at one k (lowest `bands`, clamped to the basis size;
/// 0 keeps all). A nonzero window below the basis size runs the
/// partial-spectrum eigensolver (syevd_partial).
BandsAtK solve_epm_at_k(const PlaneWaveBasis& basis, const KPoint& kpoint,
                        std::size_t bands = 0);

/// EPM band structure along a path or grid: one partial eigensolve per
/// k-point. Independent k-points split across the thread pool (results
/// bitwise identical for any thread count); traced runs solve the
/// k-points serially instead, so the per-k stage events keep program
/// order and a pool-width-independent shape.
std::vector<BandsAtK> band_structure(const PlaneWaveBasis& basis,
                                     const std::vector<KPoint>& path,
                                     std::size_t bands);

/// Valence-band maximum, conduction-band minimum and the indirect gap
/// (eV) over a set of solved k-points, assuming `valence` filled bands
/// (>= 1), plus the weight-integrated occupied band energy.
struct GapSummary {
  double vbm_ha = 0.0;
  double cbm_ha = 0.0;
  std::string vbm_label;
  std::string cbm_label;
  /// Weight-averaged occupied band energy,
  /// sum_k w_k * 2 * sum_{v < valence} e_v(k) / sum_k w_k: the
  /// BZ-integrated band energy per cell when the weights are a normalised
  /// Monkhorst-Pack grid's, the plain path average for unit weights.
  double band_energy_ha = 0.0;
  /// Total integration weight of the summarised k-set (1 for MP grids,
  /// the point count for unit-weight paths).
  double weight_sum = 0.0;

  double indirect_gap_ev() const noexcept {
    return (cbm_ha - vbm_ha) * 27.211386;
  }
};
GapSummary find_gap(const std::vector<BandsAtK>& bands, std::size_t valence);

}  // namespace ndft::dft
