#include "common/table.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/str_util.hpp"

namespace ndft {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NDFT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  NDFT_REQUIRE(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += pad_right(row[c], widths[c]);
    }
    // Trim trailing spaces for clean diffs.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c != 0 ? 2 : 0);
  }
  out += std::string(rule_width, '-') + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string TextTable::render_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    return quoted + "\"";
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) out += ',';
    out += escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace ndft
