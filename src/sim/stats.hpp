#pragma once
// Lightweight named statistics used by every hardware model.
//
// A StatSet is a flat map from dotted names ("dram.row_hits") to counters.
// Models own a StatSet each; reports aggregate them via snapshot().

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ndft::sim {

/// A flat collection of named double-precision statistics.
class StatSet {
 public:
  /// Adds `delta` to the named counter (creating it at zero first).
  void add(const std::string& name, double delta = 1.0);

  /// Sets the named statistic to an absolute value.
  void set(const std::string& name, double value);

  /// Reads a statistic; returns 0 for names never touched.
  double get(const std::string& name) const;

  /// True if the statistic exists.
  bool contains(const std::string& name) const;

  /// All statistics in name order.
  const std::map<std::string, double>& snapshot() const noexcept {
    return values_;
  }

  /// Merges another StatSet into this one, prefixing each name.
  void merge_prefixed(const std::string& prefix, const StatSet& other);

  /// Removes all statistics.
  void clear() { values_.clear(); }

  /// Renders "name = value" lines, one per statistic.
  std::string render() const;

 private:
  std::map<std::string, double> values_;
};

/// Fixed-width histogram for latency distributions.
class Histogram {
 public:
  /// Buckets of `bucket_width` starting at zero, plus an overflow bucket.
  Histogram(double bucket_width, std::size_t bucket_count);

  /// Records one sample.
  void record(double value);

  /// Number of samples recorded.
  std::uint64_t count() const noexcept { return count_; }
  /// Mean of recorded samples (0 when empty).
  double mean() const noexcept;
  /// Maximum recorded sample (0 when empty).
  double max() const noexcept { return max_; }
  /// Approximate p-th percentile (0 <= p <= 100) from bucket boundaries.
  double percentile(double p) const;

 private:
  double bucket_width_;
  std::vector<std::uint64_t> buckets_;  // last bucket = overflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ndft::sim
