#include "cpu/trace_gen.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/prng.hpp"

namespace ndft::cpu {
namespace {

/// Emits `flops` as one compute bundle if nonzero.
void emit_compute(Trace& trace, Flops flops) {
  if (flops > 0) {
    TraceOp op;
    op.kind = OpKind::kCompute;
    op.flops = flops;
    trace.ops.push_back(op);
  }
}

void emit_mem(Trace& trace, OpKind kind, Addr addr, Bytes size) {
  TraceOp op;
  op.kind = kind;
  op.addr = addr;
  op.size = size;
  trace.ops.push_back(op);
}

}  // namespace

Trace generate_trace(const TraceParams& params) {
  NDFT_REQUIRE(params.access_bytes > 0 && params.access_bytes <= 64,
               "access granularity must be 1..64 bytes");
  NDFT_REQUIRE(params.max_mem_ops >= 16, "sampling bound too small");

  Trace trace;
  const Bytes total_bytes = params.bytes_read + params.bytes_written;

  // Pure-compute kernel: one bundle, no sampling needed.
  if (total_bytes == 0) {
    emit_compute(trace, params.flops);
    trace.scale = 1.0;
    return trace;
  }

  const std::uint64_t total_ops =
      std::max<std::uint64_t>(1, total_bytes / params.access_bytes);
  double scale = 1.0;
  std::uint64_t sampled_ops = total_ops;
  if (total_ops > params.max_mem_ops) {
    scale = static_cast<double>(total_ops) /
            static_cast<double>(params.max_mem_ops);
    sampled_ops = params.max_mem_ops;
  }
  trace.scale = scale;

  // Interleave compute so per-op arithmetic intensity matches the kernel.
  const double flops_per_op =
      static_cast<double>(params.flops) / static_cast<double>(total_ops);
  const double write_fraction =
      static_cast<double>(params.bytes_written) /
      static_cast<double>(total_bytes);

  const Bytes working_set = std::max<Bytes>(params.working_set, 64);
  const std::uint64_t ws_lines = std::max<Bytes>(working_set / 64, 1);

  Prng prng(params.seed);
  trace.ops.reserve(sampled_ops * 2);

  double flops_carry = 0.0;
  Addr cursor = 0;  // byte offset within the working set
  // Writes are batched into runs (real kernels separate their load and
  // store phases; per-op interleaving would thrash the DRAM write-to-read
  // turnaround in a way no tuned code does).
  const auto writes_per_16 =
      static_cast<std::uint64_t>(16.0 * write_fraction + 0.5);

  // Blocked pattern state: sweep a cache-sized block `reuse` times before
  // moving on (models tiled GEMM reuse).
  const Bytes block_bytes =
      std::min<Bytes>(working_set, std::max<Bytes>(params.block_bytes, 64));
  std::uint64_t block_lines = std::max<Bytes>(block_bytes / 64, 1);
  const std::uint64_t reuse =
      std::max<std::uint64_t>(1, total_bytes / working_set);
  // Shrink the tile if needed so the sampled window covers at least one
  // full reuse cycle; otherwise the sample over-weights the cold pass and
  // misrepresents the kernel's DRAM traffic.
  if (sampled_ops < reuse * block_lines) {
    block_lines = std::max<std::uint64_t>(sampled_ops / reuse, 16);
  }
  std::uint64_t block_pos = 0;   // line index within current block
  std::uint64_t block_pass = 0;  // which reuse pass
  Addr block_base = 0;

  for (std::uint64_t i = 0; i < sampled_ops; ++i) {
    flops_carry += flops_per_op;
    const auto bundle = static_cast<Flops>(flops_carry);
    flops_carry -= static_cast<double>(bundle);
    emit_compute(trace, bundle);

    Addr offset = 0;
    switch (params.pattern) {
      case AccessPattern::kSequential:
        offset = cursor;
        cursor = (cursor + params.access_bytes) % working_set;
        break;
      case AccessPattern::kStrided:
        offset = cursor;
        cursor = (cursor + params.stride_bytes) % working_set;
        break;
      case AccessPattern::kRandom:
        offset = prng.next_below(ws_lines) * 64;
        break;
      case AccessPattern::kBlocked: {
        offset = block_base + block_pos * 64;
        if (++block_pos == block_lines) {
          block_pos = 0;
          if (++block_pass >= reuse) {
            block_pass = 0;
            block_base = (block_base + block_lines * 64) % working_set;
          }
        }
        break;
      }
    }

    const bool is_write = (i % 16) < writes_per_16;
    emit_mem(trace, is_write ? OpKind::kStore : OpKind::kLoad,
             params.base_addr + (offset % working_set), params.access_bytes);
  }

  return trace;
}

}  // namespace ndft::cpu
