// Submits a band-structure job to an NDFT service over a real loopback
// socket and prints the gap. With no arguments the example hosts its own
// in-process server (engine + service + HttpServer on an ephemeral
// port), so it runs standalone; pass a port (and optionally a host) to
// talk to an already-running `ndft_serve` instead:
//
//   ./example_service_client              # self-hosted round trip
//   ./example_service_client 8424        # talk to ndft_serve on :8424
//   ./example_service_client 8424 10.0.0.5

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "api/engine.hpp"
#include "api/request_json.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/service.hpp"

int main(int argc, char** argv) {
  using namespace ndft;

  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (argc > 1) port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  if (argc > 2) host = argv[2];

  try {
    // Self-host when no port was given.
    std::unique_ptr<api::Engine> engine;
    std::unique_ptr<net::Service> service;
    std::unique_ptr<net::HttpServer> server;
    if (port == 0) {
      engine = std::make_unique<api::Engine>();
      net::ServiceConfig service_config;
      service_config.log = nullptr;
      service = std::make_unique<net::Service>(*engine, service_config);
      net::ServerConfig server_config;  // port 0 = ephemeral
      server = std::make_unique<net::HttpServer>(
          server_config, [&s = *service](const net::HttpRequest& request) {
            return s.handle(request);
          });
      server->start();
      port = server->port();
      std::printf("self-hosted ndft service on %s:%u\n", host.c_str(),
                  static_cast<unsigned>(port));
    }

    // Primitive silicon band structure along the FCC path (atoms == 0
    // selects the 2-atom primitive cell, the only crystal the
    // high-symmetry path applies to).
    api::BandStructureJob job;
    job.sampling = api::BandStructureJob::Sampling::kPath;
    job.segments = 6;
    job.bands = 8;
    job.valence_bands = 4;
    const Json request_json = api::job_request_to_json(job);

    net::HttpClient client(host, port);
    // Long-poll so one POST both submits and collects the result.
    const net::HttpResponse response =
        client.post("/v1/jobs?wait_ms=60000", request_json.dump());
    if (response.status != 200) {
      std::fprintf(stderr, "service returned HTTP %d:\n%s\n", response.status,
                   response.body.c_str());
      return 1;
    }

    const api::JobResult result =
        api::JobResult::from_json(Json::parse(response.body));
    if (result.status != api::JobStatus::kOk || !result.band_structure) {
      std::fprintf(stderr, "job ended %s: %s\n",
                   api::to_string(result.status),
                   result.error_message.c_str());
      return 1;
    }
    const api::BandStructurePayload& bands = *result.band_structure;
    std::printf("band structure over the wire (job %llu, %zu k-points):\n",
                static_cast<unsigned long long>(result.engine.job_id),
                bands.path.size());
    std::printf("  indirect gap    %.4f eV  (%s -> %s)\n",
                bands.indirect_gap_ev, bands.vbm_label.c_str(),
                bands.cbm_label.c_str());
    std::printf("  direct gap at G %.4f eV\n", bands.direct_gap_gamma_ev);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "service_client: %s\n", e.what());
    return 1;
  }
}
