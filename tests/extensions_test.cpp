// Tests for the extension modules: SCF ground state, the block Davidson
// solver, optical spectra, the adaptive scheduler and the DRAM page
// policies.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cli.hpp"
#include "core/ndft_system.hpp"
#include "dft/davidson.hpp"
#include "dft/scf.hpp"
#include "dft/spectrum.hpp"
#include "mem/dram_system.hpp"
#include "runtime/adaptive.hpp"

namespace ndft {
namespace {

// ------------------------------------------------------------------- SCF

class ScfFixture : public ::testing::Test {
 protected:
  ScfFixture()
      : crystal(dft::Crystal::silicon_supercell(8)),
        basis(crystal, 2.0) {}

  dft::Crystal crystal;
  dft::PlaneWaveBasis basis;
};

TEST_F(ScfFixture, ConvergesForSilicon) {
  dft::ScfConfig config;
  config.max_iterations = 40;
  config.tolerance = 1e-5;
  const dft::ScfResult result = dft::solve_scf(basis, config);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.history.back().density_residual, 1e-5);
  EXPECT_GT(result.history.size(), 2u);  // not trivially converged
}

TEST_F(ScfFixture, DensityIntegratesToElectronCount) {
  dft::ScfConfig config;
  config.tolerance = 1e-4;
  const dft::ScfResult result = dft::solve_scf(basis, config);
  // 8 Si atoms x 4 valence electrons = 32 electrons.
  EXPECT_NEAR(result.electron_count(basis), 32.0, 0.5);
  for (const double n : result.density) {
    EXPECT_GE(n, 0.0);
  }
}

TEST_F(ScfFixture, ResidualDecreasesOverall) {
  dft::ScfConfig config;
  config.max_iterations = 25;
  config.tolerance = 1e-7;  // force a long history
  const dft::ScfResult result = dft::solve_scf(basis, config);
  ASSERT_GE(result.history.size(), 5u);
  const double early = result.history[1].density_residual;
  const double late = result.history.back().density_residual;
  EXPECT_LT(late, early);
}

TEST_F(ScfFixture, KeepsAGap) {
  dft::ScfConfig config;
  config.tolerance = 1e-4;
  const dft::ScfResult result = dft::solve_scf(basis, config);
  // Self-consistency shifts the EPM bands but silicon stays gapped.
  EXPECT_GT(result.history.back().gap_ev, 0.1);
  EXPECT_LT(result.history.back().gap_ev, 5.0);
}

TEST_F(ScfFixture, AndersonConvergesAtLeastAsFastAsLinear) {
  dft::ScfConfig linear;
  linear.tolerance = 1e-6;
  linear.max_iterations = 60;
  const dft::ScfResult base = dft::solve_scf(basis, linear);
  dft::ScfConfig anderson = linear;
  anderson.scheme = dft::MixingScheme::kAnderson;
  const dft::ScfResult accelerated = dft::solve_scf(basis, anderson);
  EXPECT_TRUE(base.converged);
  EXPECT_TRUE(accelerated.converged);
  EXPECT_LE(accelerated.history.size(), base.history.size());
  // Both fixed points agree.
  EXPECT_NEAR(accelerated.history.back().gap_ev,
              base.history.back().gap_ev, 0.05);
}

TEST_F(ScfFixture, RejectsBadConfig) {
  dft::ScfConfig config;
  config.mixing = 0.0;
  EXPECT_THROW(dft::solve_scf(basis, config), NdftError);
  config.mixing = 0.4;
  config.tolerance = -1.0;
  EXPECT_THROW(dft::solve_scf(basis, config), NdftError);
}

TEST(LdaTest, ExchangeCorrelationLimits) {
  // V_xc < 0 and monotone in density; known value at rs = 1 ballpark.
  EXPECT_LT(dft::lda_vxc(0.1), 0.0);
  EXPECT_LT(dft::lda_vxc(1.0), dft::lda_vxc(0.01));
  EXPECT_LT(dft::lda_exc(0.1), 0.0);
  // Exchange-only part at n = 1: -(3/pi)^(1/3) ~ -0.9847; with
  // correlation the potential is a bit deeper.
  EXPECT_LT(dft::lda_vxc(1.0), -0.98);
  EXPECT_GT(dft::lda_vxc(1.0), -1.25);
}

// -------------------------------------------------------------- Davidson

dft::RealMatrix test_matrix(std::size_t n) {
  // Diagonally dominant symmetric matrix with a known-ish low spectrum.
  dft::RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = static_cast<double>(i) + 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      const double v = 0.1 / static_cast<double>(i + j + 1);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(DavidsonTest, MatchesDenseSolverOnLowestPairs) {
  const std::size_t n = 120;
  const dft::RealMatrix m = test_matrix(n);
  const dft::EigenResult dense = dft::syevd(m);
  dft::DavidsonConfig config;
  config.wanted = 5;
  config.tolerance = 1e-9;
  const dft::DavidsonResult iterative = dft::davidson(m, config);
  EXPECT_TRUE(iterative.converged);
  ASSERT_EQ(iterative.eigenvalues.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(iterative.eigenvalues[k], dense.eigenvalues[k], 1e-7);
  }
}

TEST(DavidsonTest, EigenvectorsHaveSmallResidual) {
  const std::size_t n = 80;
  const dft::RealMatrix m = test_matrix(n);
  dft::DavidsonConfig config;
  config.wanted = 3;
  const dft::DavidsonResult result = dft::davidson(m, config);
  ASSERT_TRUE(result.converged);
  for (std::size_t k = 0; k < 3; ++k) {
    double residual2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        acc += m(i, j) * result.eigenvectors(j, k);
      }
      acc -= result.eigenvalues[k] * result.eigenvectors(i, k);
      residual2 += acc * acc;
    }
    EXPECT_LT(std::sqrt(residual2), 1e-6);
  }
}

TEST(DavidsonTest, MatrixFreeOperator) {
  // 1D Laplacian stencil, matrix-free: lowest eigenvalue of the n-point
  // Dirichlet Laplacian is 2 - 2 cos(pi/(n+1)).
  const std::size_t n = 64;
  const dft::ApplyFn apply = [n](const std::vector<double>& x,
                                 std::vector<double>& y) {
    y.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = 2.0 * x[i];
      if (i > 0) y[i] -= x[i - 1];
      if (i + 1 < n) y[i] -= x[i + 1];
    }
  };
  std::vector<double> diagonal(n, 2.0);
  dft::DavidsonConfig config;
  config.wanted = 2;
  // The uniform diagonal makes the Jacobi preconditioner toothless here,
  // so keep a realistic tolerance.
  config.tolerance = 1e-8;
  config.max_iterations = 400;
  const dft::DavidsonResult result = dft::davidson(n, apply, diagonal,
                                                   config);
  const double pi = std::numbers::pi;
  ASSERT_GE(result.eigenvalues.size(), 2u);
  EXPECT_NEAR(result.eigenvalues[0],
              2.0 - 2.0 * std::cos(pi / static_cast<double>(n + 1)), 1e-7);
  EXPECT_NEAR(result.eigenvalues[1],
              2.0 - 2.0 * std::cos(2.0 * pi / static_cast<double>(n + 1)),
              1e-7);
}

TEST(DavidsonTest, UsesFarFewerApplicationsThanDense) {
  const std::size_t n = 200;
  const dft::RealMatrix m = test_matrix(n);
  dft::DavidsonConfig config;
  config.wanted = 4;
  const dft::DavidsonResult result = dft::davidson(m, config);
  EXPECT_TRUE(result.converged);
  // The point of the iterative solver: o(n) operator applications.
  EXPECT_LT(result.operator_applications, n);
}

TEST(DavidsonTest, RejectsBadRequests) {
  const dft::RealMatrix m = test_matrix(8);
  dft::DavidsonConfig config;
  config.wanted = 0;
  EXPECT_THROW(dft::davidson(m, config), NdftError);
  config.wanted = 20;  // more than n
  EXPECT_THROW(dft::davidson(m, config), NdftError);
}

// ---------------------------------------------------------------- spectra

class SpectrumFixture : public ::testing::Test {
 protected:
  SpectrumFixture()
      : crystal(dft::Crystal::silicon_supercell(8)),
        basis(crystal, 2.25),
        ground(dft::solve_epm(basis, 24)) {
    config.valence_window = 4;
    config.conduction_window = 4;
  }

  dft::Crystal crystal;
  dft::PlaneWaveBasis basis;
  dft::GroundState ground;
  dft::LrTddftConfig config;
};

TEST_F(SpectrumFixture, MomentumElementsNonNegative) {
  const std::vector<double> p2 =
      dft::momentum_matrix_elements(basis, ground, config);
  EXPECT_EQ(p2.size(), 16u);
  double total = 0.0;
  for (const double value : p2) {
    EXPECT_GE(value, 0.0);
    total += value;
  }
  EXPECT_GT(total, 0.0);  // silicon absorbs light
}

TEST_F(SpectrumFixture, OscillatorStrengthsNonNegativeAndFinite) {
  const auto lines = dft::oscillator_strengths(basis, ground, config);
  EXPECT_EQ(lines.size(), 16u);
  for (const auto& line : lines) {
    EXPECT_GT(line.energy_ev, 0.0);
    EXPECT_GE(line.strength, 0.0);
    EXPECT_TRUE(std::isfinite(line.strength));
  }
}

TEST_F(SpectrumFixture, SpectrumPeaksNearStrongLines) {
  const auto lines = dft::oscillator_strengths(basis, ground, config);
  // Find the strongest line and evaluate the broadened spectrum on/off it.
  const auto strongest =
      std::max_element(lines.begin(), lines.end(),
                       [](const auto& a, const auto& b) {
                         return a.strength < b.strength;
                       });
  ASSERT_NE(strongest, lines.end());
  const std::vector<double> on{strongest->energy_ev};
  const std::vector<double> off{strongest->energy_ev + 30.0};
  EXPECT_GT(dft::absorption_spectrum(lines, on, 0.1)[0],
            dft::absorption_spectrum(lines, off, 0.1)[0]);
}

TEST_F(SpectrumFixture, BroadeningConservesArea) {
  // The integral of each Lorentzian is its oscillator strength; on a wide
  // dense grid the summed spectrum area approximates sum(f_I).
  const auto lines = dft::oscillator_strengths(basis, ground, config);
  double total_strength = 0.0;
  for (const auto& line : lines) total_strength += line.strength;
  std::vector<double> grid;
  const double lo = 0.0, hi = 80.0, step = 0.02;
  for (double e = lo; e < hi; e += step) grid.push_back(e);
  const std::vector<double> sigma =
      dft::absorption_spectrum(lines, grid, 0.2);
  double area = 0.0;
  for (const double s : sigma) area += s * step;
  EXPECT_NEAR(area, total_strength, 0.15 * total_strength + 1e-12);
}

// ------------------------------------------------------------- adaptive

TEST(AdaptiveSchedulerTest, MeasurementsOverrideEstimates) {
  const runtime::Sca sca(runtime::DeviceProfile::table3_cpu(),
                         runtime::DeviceProfile::table3_ndp());
  const runtime::CostModel cost(runtime::DeviceProfile::table3_cpu(),
                                runtime::DeviceProfile::table3_ndp());
  runtime::AdaptiveScheduler adaptive(sca, cost);
  const dft::Workload w =
      dft::Workload::lrtddft_iteration(dft::SystemDims::silicon(64));
  const dft::KernelWork& fft = w.kernels[2];
  ASSERT_EQ(fft.cls, KernelClass::kFft);

  const TimePs estimate = adaptive.believed_time(fft, DeviceKind::kNdp);
  adaptive.record(fft.name, DeviceKind::kNdp, estimate * 10);
  EXPECT_TRUE(adaptive.has_measurement(fft.name, DeviceKind::kNdp));
  EXPECT_EQ(adaptive.believed_time(fft, DeviceKind::kNdp), estimate * 10);
}

TEST(AdaptiveSchedulerTest, RepeatedMeasurementsBlend) {
  const runtime::Sca sca(runtime::DeviceProfile::table3_cpu(),
                         runtime::DeviceProfile::table3_ndp());
  const runtime::CostModel cost(runtime::DeviceProfile::table3_cpu(),
                                runtime::DeviceProfile::table3_ndp());
  runtime::AdaptiveScheduler adaptive(sca, cost);
  dft::KernelWork k;
  k.name = "probe";
  adaptive.record("probe", DeviceKind::kCpu, 1000);
  adaptive.record("probe", DeviceKind::kCpu, 3000);
  const TimePs blended = adaptive.believed_time(k, DeviceKind::kCpu);
  EXPECT_GT(blended, 1000u);
  EXPECT_LT(blended, 3000u);
}

TEST(AdaptiveSchedulerTest, CorrectsMisprofiledPlan) {
  // SCA believes the CPU has HBM bandwidth -> static plan keeps FFT on
  // CPU; a measurement showing NDP 10x faster flips the placement.
  runtime::DeviceProfile wrong_cpu = runtime::DeviceProfile::table3_cpu();
  wrong_cpu.dram_gbps = 5000.0;
  const runtime::Sca sca(wrong_cpu, runtime::DeviceProfile::table3_ndp());
  const runtime::CostModel cost(wrong_cpu,
                                runtime::DeviceProfile::table3_ndp());
  const dft::Workload w =
      dft::Workload::lrtddft_iteration(dft::SystemDims::silicon(256));

  const runtime::Scheduler static_scheduler(sca, cost);
  const runtime::ExecutionPlan static_plan = static_scheduler.plan(w);
  // Sanity: the wrong profile keeps at least one memory kernel on CPU.
  bool any_mem_on_cpu = false;
  for (std::size_t i = 0; i < w.kernels.size(); ++i) {
    if (w.kernels[i].cls == KernelClass::kFft &&
        static_plan.placements[i].device == DeviceKind::kCpu) {
      any_mem_on_cpu = true;
    }
  }
  ASSERT_TRUE(any_mem_on_cpu);

  runtime::AdaptiveScheduler adaptive(sca, cost);
  for (const dft::KernelWork& k : w.kernels) {
    if (k.cls == KernelClass::kFft) {
      adaptive.record(k.name, DeviceKind::kCpu, 1000 * kPsPerMs);
      adaptive.record(k.name, DeviceKind::kNdp, 100 * kPsPerMs);
    }
  }
  const runtime::ExecutionPlan adapted = adaptive.plan(w);
  for (std::size_t i = 0; i < w.kernels.size(); ++i) {
    if (w.kernels[i].cls == KernelClass::kFft) {
      EXPECT_EQ(adapted.placements[i].device, DeviceKind::kNdp);
    }
  }
}

// ------------------------------------------------------------ page policy

TEST(PagePolicyTest, OpenPageWinsOnStreams) {
  const auto stream_time = [](mem::PagePolicy policy) {
    sim::EventQueue queue;
    mem::DramConfig config = mem::DramConfig::xeon_ddr4();
    config.access_latency_ps = 0;
    config.page_policy = policy;
    mem::DramSystem dram("d", queue, config);
    TimePs last = 0;
    for (unsigned i = 0; i < 2000; ++i) {
      mem::MemRequest req;
      req.addr = Addr(i) * 64;
      req.size = 64;
      req.on_complete = [&last](TimePs at) { last = std::max(last, at); };
      dram.access(std::move(req));
    }
    queue.run();
    return last;
  };
  EXPECT_GT(stream_time(mem::PagePolicy::kClosed),
            stream_time(mem::PagePolicy::kOpen) * 3);
}

TEST(PagePolicyTest, ClosedPageHasNoRowHits) {
  sim::EventQueue queue;
  mem::DramConfig config = mem::DramConfig::xeon_ddr4();
  config.access_latency_ps = 0;
  config.page_policy = mem::PagePolicy::kClosed;
  mem::DramSystem dram("d", queue, config);
  for (unsigned i = 0; i < 500; ++i) {
    mem::MemRequest req;
    req.addr = Addr(i) * 64;
    req.size = 64;
    dram.access(std::move(req));
  }
  queue.run();
  sim::StatSet stats;
  dram.collect_stats("dram", stats);
  double hits = 0;
  for (const auto& [name, value] : stats.snapshot()) {
    if (name.find("row_hits") != std::string::npos) hits += value;
  }
  EXPECT_DOUBLE_EQ(hits, 0.0);
}

// ---------------------------------------------------------------- energy

TEST(DramEnergyTest, ChannelEnergyArithmetic) {
  const mem::DramEnergy e = mem::DramEnergy::ddr4();
  // 10 ACTs, 100 reads, 50 writes, no refresh, no time.
  const double nj = mem::channel_energy_nj(e, 10, 100, 50, 0, 0);
  EXPECT_NEAR(nj, 10 * e.act_pre_nj + 100 * e.read_nj + 50 * e.write_nj,
              1e-9);
  // Background: 150 mW for 1 us = 150 nJ.
  EXPECT_NEAR(mem::channel_energy_nj(e, 0, 0, 0, 0, kPsPerUs),
              e.background_mw, 1e-9);
}

TEST(DramEnergyTest, Hbm2CheaperPerAccessThanDdr4) {
  const mem::DramEnergy ddr = mem::DramEnergy::ddr4();
  const mem::DramEnergy hbm = mem::DramEnergy::hbm2();
  EXPECT_LT(hbm.read_nj, ddr.read_nj / 2);
  EXPECT_LT(hbm.act_pre_nj, ddr.act_pre_nj);
}

TEST(DramEnergyTest, RefreshFoldsIntoBackground) {
  const mem::DramEnergy hbm = mem::DramEnergy::hbm2();
  const TimePs trefi = 3900 * 1000;  // 3.9 us
  const double with_refresh = hbm.background_with_refresh_mw(trefi);
  EXPECT_GT(with_refresh, hbm.background_mw);
  // 60 nJ / 3.9 us ~ 15.4 mW.
  EXPECT_NEAR(with_refresh - hbm.background_mw, 15.38, 0.1);
}

TEST(DramEnergyTest, DramSystemAccumulatesEnergy) {
  sim::EventQueue queue;
  mem::DramConfig config = mem::DramConfig::xeon_ddr4();
  config.access_latency_ps = 0;
  mem::DramSystem dram("d", queue, config);
  EXPECT_DOUBLE_EQ(dram.dynamic_energy_nj(mem::DramEnergy::ddr4()), 0.0);
  for (unsigned i = 0; i < 100; ++i) {
    mem::MemRequest req;
    req.addr = Addr(i) * 64;
    req.size = 64;
    dram.access(std::move(req));
  }
  queue.run();
  const double nj = dram.dynamic_energy_nj(mem::DramEnergy::ddr4());
  EXPECT_GT(nj, 100 * 4.0);        // at least the read bursts
  EXPECT_LT(nj, 100 * 20.0);       // bounded by a few nJ per access
}

TEST(EnergyReportTest, AllModesReportPositiveEnergy) {
  core::SystemConfig config = core::SystemConfig::paper_default();
  config.sampled_ops_per_kernel = 20000;
  config.min_ops_per_core = 200;
  const core::NdftSystem system(config);
  const dft::Workload w = system.workload_for(16);
  for (const core::ExecMode mode :
       {core::ExecMode::kCpuBaseline, core::ExecMode::kGpuBaseline,
        core::ExecMode::kNdft}) {
    const core::RunReport report = system.run(w, mode);
    EXPECT_GT(report.memory_energy_mj, 0.0) << to_string(mode);
    EXPECT_LT(report.memory_energy_mj, 1e6) << to_string(mode);
  }
}

// -------------------------------------------------------------------- CLI

TEST(CliArgsTest, ParsesFlagsAndPositionals) {
  // Note the convention: a flag consumes the next non-flag token as its
  // value, so positionals must precede value-less flags.
  const char* argv[] = {"prog", "input.dat", "--atoms", "256",
                        "--mode", "ndft", "--csv"};
  const core::CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("atoms", 0), 256);
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("mode", "x"), "ndft");
  EXPECT_EQ(args.get("absent", "fallback"), "fallback");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.dat");
}

TEST(CliArgsTest, RejectsMalformedIntegers) {
  const char* argv[] = {"prog", "--atoms", "many"};
  const core::CliArgs args(3, argv);
  EXPECT_THROW(args.get_int("atoms", 0), NdftError);
  EXPECT_EQ(args.get_int("absent", 7), 7);
}

// ---------------------------------------------------------- planned runs

TEST(RunPlannedTest, HonoursCallerPlacements) {
  core::SystemConfig config = core::SystemConfig::paper_default();
  config.sampled_ops_per_kernel = 20000;
  config.min_ops_per_core = 200;
  const core::NdftSystem system(config);
  const dft::Workload w = system.workload_for(16);
  runtime::ExecutionPlan plan;
  plan.placements.assign(w.kernels.size(), runtime::Placement{});
  for (std::size_t i = 0; i < plan.placements.size(); ++i) {
    plan.placements[i].device =
        (i % 2 == 0) ? DeviceKind::kCpu : DeviceKind::kNdp;
  }
  const core::RunReport report = system.run_planned(w, plan);
  for (std::size_t i = 0; i < report.kernels.size(); ++i) {
    EXPECT_EQ(report.kernels[i].device, plan.placements[i].device);
  }
}

TEST(RunPlannedTest, RejectsMismatchedPlan) {
  const core::NdftSystem system;
  const dft::Workload w = system.workload_for(16);
  runtime::ExecutionPlan plan;  // empty
  EXPECT_THROW(system.run_planned(w, plan), NdftError);
}

}  // namespace
}  // namespace ndft
