#pragma once
// Nonlocal pseudopotentials, in two roles:
//
// 1. Functional: Kleinman-Bylander separable projectors on the plane-wave
//    basis (s and p channels with Gaussian radial forms), applied to
//    wavefunctions as V_nl |psi> = sum_{a,lm} |beta_lm^a> D_l <beta_lm^a|psi>.
//    This is the "apply pseudopotential to the wavefunction" loop of the
//    paper's Algorithm 1.
//
// 2. Footprint model: the per-atom dataset a production plane-wave code
//    replicates per process (projector values on the dense real-space
//    sphere, augmentation Q_ij, radial tables, D_ij, index maps). The
//    paper's Table I and the shared-block optimization (Section IV-B) are
//    about the size of this dataset; PseudoSizing computes it from
//    physical parameters.

#include <vector>

#include "dft/basis.hpp"
#include "dft/linalg.hpp"
#include "dft/matrix.hpp"

namespace ndft::dft {

/// Kleinman-Bylander projectors for every atom of a crystal on a basis.
class KbProjectors {
 public:
  /// Builds s (l=0) and p (l=1) projectors with Gaussian radial forms of
  /// width `sigma_bohr` for every atom in the basis's crystal.
  explicit KbProjectors(const PlaneWaveBasis& basis,
                        double sigma_bohr = 1.0);

  /// Number of projectors per atom (1 s + 3 p).
  static constexpr std::size_t kProjectorsPerAtom = 4;

  /// Total projector count (atoms x 4).
  std::size_t count() const noexcept { return coefficients_.rows(); }

  /// Applies V_nl: out += sum |beta> D <beta|in>. `in`/`out` are
  /// wavefunction coefficient vectors over the basis G vectors.
  void apply(const std::vector<Complex>& in, std::vector<Complex>& out,
             OpCount* count = nullptr) const;

  /// <beta_p | in> for every projector p (used by tests and the
  /// wavefunction-update example).
  std::vector<Complex> project(const std::vector<Complex>& in) const;

  /// Coupling constant for projector `p` (D_0 for s, D_1 for p channels).
  double coupling(std::size_t p) const {
    NDFT_ASSERT(p < couplings_.size());
    return couplings_[p];
  }

 private:
  const PlaneWaveBasis* basis_;
  ComplexMatrix coefficients_;     // projector p x G vector
  std::vector<double> couplings_;  // D per projector
};

/// Sizing model for the per-atom pseudopotential dataset of a production
/// plane-wave code (PAW-style). All knobs are physical; bytes_per_atom()
/// lands near the ~0.6-1.2 MB/atom range implied by the paper's Table I.
struct PseudoSizing {
  unsigned projectors = 8;          ///< s,p x 2 channels: 2*(1+3)
  double cutoff_radius_bohr = 2.5;  ///< projector sphere radius
  double ecut_ha = 12.5;            ///< wavefunction cutoff (25 Ry)
  unsigned dense_factor = 2;        ///< augmentation-grid refinement per axis
  unsigned radial_points = 600;     ///< radial table length per channel

  /// Real-space grid density (points per Bohr^3) implied by the cutoff.
  double grid_density() const;

  /// Grid points inside the projector sphere (dense grid if `dense`).
  std::size_t sphere_points(bool dense) const;

  /// Bytes of pseudopotential data for one atom: projectors + augmentation
  /// Q_ij + radial tables + D_ij + integer index map.
  Bytes bytes_per_atom() const;

  /// Complete dataset for `atoms` atoms (one process's copy).
  Bytes bytes_total(std::size_t atoms) const {
    return bytes_per_atom() * atoms;
  }

  /// Per-atom *index* bytes a process keeps for blocks it does not own
  /// (shared-block mode: owner id, offset, length, atom id).
  static Bytes index_bytes_per_atom() noexcept { return 32; }
};

}  // namespace ndft::dft
