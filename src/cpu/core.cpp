#include "cpu/core.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ndft::cpu {

CoreConfig CoreConfig::xeon_core() {
  CoreConfig c{};
  c.freq_mhz = 2400;
  c.issue_width = 4;
  c.flops_per_cycle = 16.0;  // 2x 256-bit FMA pipes
  c.max_outstanding = 10;
  return c;
}

CoreConfig CoreConfig::host_core() {
  CoreConfig c{};
  c.freq_mhz = 3000;
  c.issue_width = 4;
  c.flops_per_cycle = 32.0;  // 2x 512-bit FMA pipes
  c.max_outstanding = 12;
  return c;
}

CoreConfig CoreConfig::ndp_core() {
  CoreConfig c{};
  c.freq_mhz = 2000;
  c.issue_width = 2;
  c.flops_per_cycle = 0.8;   // scalar FPU, no FMA: wimpy by design
  c.max_outstanding = 2;     // in-order core: one miss + one hit-under-miss
  return c;
}

Core::Core(std::string name, sim::EventQueue& queue, const CoreConfig& config,
           mem::MemoryPort& port)
    : SimObject(std::move(name), queue),
      config_(config),
      clock_(config.freq_mhz),
      port_(&port) {}

void Core::run_trace(const Trace* trace, std::function<void()> on_done) {
  NDFT_REQUIRE(!busy(), "core is already executing a trace");
  NDFT_ASSERT(trace != nullptr);
  trace_ = trace;
  on_done_ = std::move(on_done);
  pc_ = 0;
  outstanding_ = 0;
  issue_time_ = now();
  last_completion_ = now();
  advance();
}

void Core::advance() {
  if (trace_ == nullptr) {
    return;
  }
  issue_time_ = std::max(issue_time_, now());
  const TimePs issue_cost =
      std::max<TimePs>(1, clock_.period_ps() / config_.issue_width);

  while (pc_ < trace_->ops.size()) {
    const TraceOp& op = trace_->ops[pc_];
    if (op.kind == OpKind::kCompute) {
      const double cycles_needed = static_cast<double>(op.flops) /
                                   config_.flops_per_cycle;
      issue_time_ += static_cast<TimePs>(
          std::ceil(cycles_needed * static_cast<double>(clock_.period_ps())));
      counters_.flops += static_cast<double>(op.flops);
      ++pc_;
      continue;
    }

    if (outstanding_ >= config_.max_outstanding) {
      // MLP limit reached: resume from the next completion callback.
      ++counters_.mlp_stalls;
      return;
    }

    issue_time_ += issue_cost;
    mem::MemRequest req;
    req.addr = op.addr;
    req.size = op.size;
    req.is_write = (op.kind == OpKind::kStore);
    req.on_complete = [this](TimePs at) {
      NDFT_ASSERT(outstanding_ > 0);
      --outstanding_;
      last_completion_ = std::max(last_completion_, at);
      advance();
      try_finish();
    };
    ++outstanding_;
    if (req.is_write) {
      ++counters_.stores;
    } else {
      ++counters_.loads;
    }
    counters_.mem_bytes += static_cast<double>(op.size);

    if (issue_time_ <= now()) {
      port_->access(std::move(req));
    } else {
      queue().schedule_at(issue_time_,
                          [this, req = std::move(req)]() mutable {
                            port_->access(std::move(req));
                          });
    }
    ++pc_;
  }
  try_finish();
}

void Core::try_finish() {
  if (trace_ == nullptr || pc_ < trace_->ops.size() || outstanding_ != 0) {
    return;
  }
  const TimePs end = std::max({issue_time_, last_completion_, now()});
  trace_ = nullptr;
  auto done = std::move(on_done_);
  on_done_ = nullptr;
  queue().schedule_at(end, [done = std::move(done)] {
    if (done) done();
  });
}

void Core::publish_stats() {
  stats().set("loads", static_cast<double>(counters_.loads));
  stats().set("stores", static_cast<double>(counters_.stores));
  stats().set("mlp_stalls", static_cast<double>(counters_.mlp_stalls));
  stats().set("flops", counters_.flops);
  stats().set("mem_bytes", counters_.mem_bytes);
}

}  // namespace ndft::cpu
