#include "cpu/cpu_complex.hpp"

#include "common/error.hpp"

namespace ndft::cpu {

CpuComplexConfig CpuComplexConfig::table3_host() {
  CpuComplexConfig c{};
  c.cores = 8;
  c.core = CoreConfig::host_core();
  c.l1 = cache::CacheConfig::l1(c.core.freq_mhz);
  c.l2 = cache::CacheConfig::l2(c.core.freq_mhz);
  c.l3 = cache::CacheConfig::l3(c.core.freq_mhz);
  // The host reaches HBM through ~120 ns SerDes+mesh round trips; cover
  // the bandwidth-delay product with outstanding misses.
  c.l3.mshrs = 256;
  return c;
}

CpuComplexConfig CpuComplexConfig::xeon_baseline() {
  CpuComplexConfig c{};
  c.cores = 24;  // 2 sockets x 12 cores
  c.core = CoreConfig::xeon_core();
  c.l1 = cache::CacheConfig::l1(c.core.freq_mhz);
  c.l2 = cache::CacheConfig::l2(c.core.freq_mhz);
  c.l3 = cache::CacheConfig::l3(c.core.freq_mhz);
  c.l3.size_bytes = 60 * 1024 * 1024;  // 2x 30 MiB LLC
  c.l3.ways = 20;
  // Generous uncore queueing: 24 streams need ~8 requests in flight each
  // for the memory controller to form row-hit bursts.
  c.l3.mshrs = 256;
  return c;
}

CpuComplex::CpuComplex(const std::string& name, sim::EventQueue& queue,
                       const CpuComplexConfig& config,
                       mem::MemoryPort& memory)
    : config_(config) {
  NDFT_REQUIRE(config.cores > 0, "CPU complex needs at least one core");
  l3_ = std::make_unique<cache::Cache>(name + ".l3", queue, config.l3,
                                       memory);
  private_.reserve(config.cores);
  cores_.reserve(config.cores);
  for (unsigned i = 0; i < config.cores; ++i) {
    const std::string core_name = name + ".core" + std::to_string(i);
    private_.push_back(std::make_unique<cache::PrivateHierarchy>(
        core_name, queue, config.l1, config.l2, *l3_));
    cores_.push_back(std::make_unique<Core>(core_name, queue, config.core,
                                            private_.back()->port()));
  }
}

void CpuComplex::run(const std::vector<const Trace*>& traces,
                     std::function<void()> on_done) {
  NDFT_REQUIRE(traces.size() <= cores_.size(),
               "more traces than cores in the complex");
  NDFT_REQUIRE(!traces.empty(), "no traces to run");
  NDFT_REQUIRE(running_ == 0, "complex is already running a kernel");
  on_done_ = std::move(on_done);
  running_ = static_cast<unsigned>(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    NDFT_ASSERT(traces[i] != nullptr);
    cores_[i]->run_trace(traces[i], [this] {
      NDFT_ASSERT(running_ > 0);
      if (--running_ == 0 && on_done_) {
        auto done = std::move(on_done_);
        on_done_ = nullptr;
        done();
      }
    });
  }
}

void CpuComplex::flush_caches() {
  for (auto& hierarchy : private_) {
    hierarchy->l1().flush();
    hierarchy->l2().flush();
  }
  l3_->flush();
}

void CpuComplex::invalidate_caches() {
  for (auto& hierarchy : private_) {
    hierarchy->l1().invalidate_all();
    hierarchy->l2().invalidate_all();
  }
  l3_->invalidate_all();
}

void CpuComplex::collect_stats(const std::string& prefix,
                               sim::StatSet& out) const {
  l3_->publish_stats();
  out.merge_prefixed(prefix + ".l3", l3_->stats());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const std::string core_prefix = prefix + ".core" + std::to_string(i);
    cores_[i]->publish_stats();
    private_[i]->l1().publish_stats();
    private_[i]->l2().publish_stats();
    out.merge_prefixed(core_prefix, cores_[i]->stats());
    out.merge_prefixed(core_prefix + ".l1", private_[i]->l1().stats());
    out.merge_prefixed(core_prefix + ".l2", private_[i]->l2().stats());
  }
}

}  // namespace ndft::cpu
