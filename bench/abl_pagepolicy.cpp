// Ablation A4: DRAM row-buffer policy. Open-page wins on streaming
// (row-hit trains), closed-page wins on scattered traffic (no conflict
// precharge on the critical path); the workload's kernel mix explains why
// the controllers default to open-page with FR-FCFS.

#include <cstdio>

#include "common/prng.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "mem/dram_system.hpp"
#include "sim/event_queue.hpp"

using namespace ndft;

namespace {

/// Issues `count` reads via `next` and returns effective GB/s.
template <typename Fn>
double measure(mem::PagePolicy policy, unsigned count, Fn&& next) {
  sim::EventQueue queue;
  mem::DramConfig config = mem::DramConfig::xeon_ddr4();
  config.access_latency_ps = 0;
  config.page_policy = policy;
  mem::DramSystem dram("d", queue, config);
  TimePs last = 0;
  for (unsigned i = 0; i < count; ++i) {
    mem::MemRequest req;
    req.addr = next(i);
    req.size = 64;
    req.on_complete = [&last](TimePs at) { last = std::max(last, at); };
    dram.access(std::move(req));
  }
  queue.run();
  return static_cast<double>(count) * 64 / static_cast<double>(last) *
         1000.0;
}

}  // namespace

int main() {
  std::printf("Ablation A4: open-page vs closed-page DRAM policy "
              "(DDR4-2400, 4 channels)\n\n");
  const unsigned count = 16000;
  Prng prng(99);
  std::vector<Addr> random_addrs(count);
  for (Addr& addr : random_addrs) {
    addr = prng.next_below(1ull << 30) / 64 * 64;
  }

  TextTable table({"pattern", "open-page GB/s", "closed-page GB/s",
                   "open/closed"});
  const auto row = [&](const char* name, auto&& next) {
    const double open = measure(mem::PagePolicy::kOpen, count, next);
    const double closed = measure(mem::PagePolicy::kClosed, count, next);
    table.add_row({name, strformat("%.2f", open),
                   strformat("%.2f", closed),
                   format_speedup(open / closed)});
  };
  row("sequential", [](unsigned i) { return Addr(i) * 64; });
  row("strided 1 KiB", [](unsigned i) { return Addr(i) * 1024; });
  row("random", [&](unsigned i) { return random_addrs[i]; });
  std::printf("%s", table.render().c_str());
  return 0;
}
