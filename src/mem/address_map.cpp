#include "mem/address_map.hpp"

namespace ndft::mem {

AddressMap::AddressMap(unsigned channels, const DramGeometry& geometry,
                       Bytes line_bytes)
    : channels_(channels), geometry_(geometry), line_bytes_(line_bytes) {
  NDFT_REQUIRE(is_pow2(channels), "channel count must be a power of two");
  NDFT_REQUIRE(is_pow2(line_bytes), "line size must be a power of two");
  NDFT_REQUIRE(is_pow2(geometry.banks), "bank count must be a power of two");
  NDFT_REQUIRE(is_pow2(geometry.row_bytes), "row size must be a power of two");
  NDFT_REQUIRE(geometry.row_bytes >= line_bytes,
               "row must hold at least one line");
  lines_per_row_ = static_cast<unsigned>(geometry.row_bytes / line_bytes);
  line_shift_ = log2_exact(line_bytes);
  channel_bits_ = log2_exact(channels);
  column_bits_ = log2_exact(lines_per_row_);
  bank_bits_ = log2_exact(geometry.banks);
  capacity_ = static_cast<Bytes>(channels) * geometry.channel_capacity();
}

DramCoord AddressMap::decode(Addr addr) const noexcept {
  const Addr full_line = (addr % capacity_) >> line_shift_;
  Addr line = full_line;
  DramCoord coord;
  coord.channel = static_cast<unsigned>(bits(line, 0, channel_bits_));
  line >>= channel_bits_;
  coord.column = static_cast<unsigned>(bits(line, 0, column_bits_));
  line >>= column_bits_;
  coord.bank = static_cast<unsigned>(bits(line, 0, bank_bits_));
  line >>= bank_bits_;
  coord.row = static_cast<unsigned>(line % geometry_.rows);

  // Permutation-based interleaving (real controllers and Ramulator do the
  // same): XOR-fold the higher address bits into the channel index so
  // power-of-two strides cannot alias onto one channel, and fold row bits
  // into the bank index so concurrent streams with equal bank fields but
  // different rows land in different banks instead of ping-ponging a row.
  if (channel_bits_ > 0) {
    Addr fold = full_line >> channel_bits_;
    unsigned hash = coord.channel;
    while (fold != 0) {
      hash ^= static_cast<unsigned>(bits(fold, 0, channel_bits_));
      fold >>= channel_bits_;
    }
    coord.channel = hash & ((1u << channel_bits_) - 1);
  }
  if (bank_bits_ > 0) {
    const unsigned mask = (1u << bank_bits_) - 1;
    unsigned hash = coord.bank;
    unsigned fold = coord.row;
    while (fold != 0) {
      hash ^= fold & mask;
      fold >>= bank_bits_;
    }
    coord.bank = hash & mask;
  }
  return coord;
}

}  // namespace ndft::mem
