// Tests for the k-point machinery: primitive cell, high-symmetry paths,
// Monkhorst-Pack grids and the silicon band structure's known features.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numbers>

#include "common/thread_pool.hpp"
#include "dft/kpoints.hpp"

namespace ndft::dft {
namespace {

constexpr double kEvPerHa = 27.211386;

TEST(PrimitiveCellTest, TwoAtomsAndFccVolume) {
  const Crystal primitive = silicon_primitive();
  EXPECT_EQ(primitive.atom_count(), 2u);
  const double a0 = kSiliconLatticeBohr;
  EXPECT_NEAR(primitive.volume(), a0 * a0 * a0 / 4.0, 1e-6);
}

TEST(PrimitiveCellTest, SameBondLengthAsSupercell) {
  const Crystal primitive = silicon_primitive();
  const auto& pos = primitive.positions();
  const double bond = std::sqrt((pos[0] - pos[1]).norm2());
  EXPECT_NEAR(bond, std::sqrt(3.0) / 4.0 * kSiliconLatticeBohr, 1e-9);
}

TEST(KPathTest, LabelsAndLegStructure) {
  const std::vector<KPoint> path = fcc_kpath(kSiliconLatticeBohr, 5);
  EXPECT_EQ(path.size(), 4u * 5 + 1);
  EXPECT_EQ(path.front().label, "L");
  EXPECT_EQ(path.back().label, "Gamma");
  unsigned labelled = 0;
  for (const KPoint& kp : path) {
    if (!kp.label.empty()) ++labelled;
  }
  EXPECT_EQ(labelled, 5u);  // L, Gamma, X, K, Gamma
}

TEST(KPathTest, GammaIsAtOrigin) {
  const std::vector<KPoint> path = fcc_kpath(kSiliconLatticeBohr, 4);
  for (const KPoint& kp : path) {
    if (kp.label == "Gamma") {
      EXPECT_NEAR(kp.k.norm2(), 0.0, 1e-18);
    }
    if (kp.label == "X") {
      const double unit = 2.0 * std::numbers::pi / kSiliconLatticeBohr;
      EXPECT_NEAR(std::sqrt(kp.k.norm2()), unit, 1e-9);
    }
  }
}

TEST(KPathTest, LabelsBothLegEndpoints) {
  // Every high-symmetry junction must carry its label at the exact index
  // where the leg boundary sits: point l*segments for leg l, and the
  // final appended endpoint. Interior points stay unlabelled.
  const unsigned segments = 7;
  const std::vector<KPoint> path = fcc_kpath(kSiliconLatticeBohr, segments);
  ASSERT_EQ(path.size(), 4u * segments + 1);
  const char* expected[] = {"L", "Gamma", "X", "K", "Gamma"};
  for (std::size_t leg = 0; leg < 5; ++leg) {
    EXPECT_EQ(path[leg * segments].label, expected[leg])
        << "junction " << leg;
  }
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i % segments != 0) {
      EXPECT_TRUE(path[i].label.empty()) << "interior point " << i;
    }
  }
  // The third leg runs straight from X to K (what the docstring now
  // says), not via the textbook U|K jump: every interior point
  // interpolates linearly between the two junctions.
  const double unit = 2.0 * std::numbers::pi / kSiliconLatticeBohr;
  const Vec3 x{0.0, unit, 0.0};
  const Vec3 k_point{0.75 * unit, 0.75 * unit, 0.0};
  for (unsigned s = 0; s < segments; ++s) {
    const double t = static_cast<double>(s) / segments;
    const Vec3 expected_k = x + (k_point - x) * t;
    EXPECT_NEAR((path[2 * segments + s].k - expected_k).norm2(), 0.0,
                1e-24)
        << "X->K interior point " << s;
  }
}

TEST(MonkhorstPackTest, WeightsSumToOne) {
  const Crystal primitive = silicon_primitive();
  const auto grid = monkhorst_pack(primitive, 3, 3, 3);
  EXPECT_EQ(grid.size(), 27u);
  double total = 0.0;
  for (const KPoint& kp : grid) total += kp.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MonkhorstPackTest, NonCubicGridCountAndWeights) {
  const Crystal primitive = silicon_primitive();
  const auto grid = monkhorst_pack(primitive, 2, 3, 4);
  EXPECT_EQ(grid.size(), 2u * 3 * 4);
  double total = 0.0;
  for (const KPoint& kp : grid) {
    EXPECT_NEAR(kp.weight, 1.0 / 24.0, 1e-15);
    total += kp.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MonkhorstPackTest, TimeReversalPairsPresent) {
  // The MP fractions (2r - n - 1)/2n negate under r -> n - 1 - r, so the
  // grid is closed under k -> -k (time reversal) for even and odd
  // divisions alike.
  const Crystal primitive = silicon_primitive();
  for (const auto& dims : {std::array<unsigned, 3>{2, 2, 2},
                           std::array<unsigned, 3>{3, 3, 3},
                           std::array<unsigned, 3>{2, 3, 4}}) {
    const auto grid = monkhorst_pack(primitive, dims[0], dims[1], dims[2]);
    for (const KPoint& kp : grid) {
      bool paired = false;
      for (const KPoint& other : grid) {
        if ((kp.k + other.k).norm2() < 1e-20) {
          paired = true;
          break;
        }
      }
      EXPECT_TRUE(paired) << "no -k partner for (" << kp.k.x << ", "
                          << kp.k.y << ", " << kp.k.z << ")";
    }
  }
}

TEST(MonkhorstPackTest, EvenGridAvoidsGamma) {
  const Crystal primitive = silicon_primitive();
  for (const KPoint& kp : monkhorst_pack(primitive, 2, 2, 2)) {
    EXPECT_GT(kp.k.norm2(), 1e-12);  // MP even grids exclude Gamma
  }
}

TEST(FoldTimeReversalTest, HalvesEvenGridsExactly) {
  // Even grids have no self-paired point, so folding keeps exactly half
  // the points, each representative carrying its partner's weight too —
  // bitwise (w doubles exactly), not just approximately.
  const Crystal primitive = silicon_primitive();
  for (const auto& dims : {std::array<unsigned, 3>{2, 2, 2},
                           std::array<unsigned, 3>{2, 3, 4},
                           std::array<unsigned, 3>{4, 4, 4}}) {
    const auto grid = monkhorst_pack(primitive, dims[0], dims[1], dims[2]);
    const auto folded = fold_time_reversal(grid);
    EXPECT_EQ(folded.size(), grid.size() / 2);
    const double unit_weight = grid.front().weight;
    double total = 0.0;
    for (const KPoint& kp : folded) {
      EXPECT_EQ(kp.weight, 2.0 * unit_weight);
      total += kp.weight;
    }
    double grid_total = 0.0;
    for (const KPoint& kp : grid) grid_total += kp.weight;
    EXPECT_NEAR(total, grid_total, 1e-15);
  }
}

TEST(FoldTimeReversalTest, OddGridKeepsGammaSelfPaired) {
  // Odd grids contain Gamma, its own time-reversal partner: it must
  // survive the fold exactly once with its original (undoubled) weight.
  const Crystal primitive = silicon_primitive();
  const auto grid = monkhorst_pack(primitive, 3, 3, 3);
  const auto folded = fold_time_reversal(grid);
  EXPECT_EQ(folded.size(), (grid.size() + 1) / 2);  // 14 of 27
  std::size_t self_paired = 0;
  for (const KPoint& kp : folded) {
    if (kp.k.norm2() < 1e-20) {
      ++self_paired;
      EXPECT_EQ(kp.weight, grid.front().weight);
    } else {
      EXPECT_EQ(kp.weight, 2.0 * grid.front().weight);
    }
  }
  EXPECT_EQ(self_paired, 1u);
}

TEST(FoldTimeReversalTest, RepresentativesAreOriginalPointsInGridOrder) {
  // Folding selects the EARLIER point of each +-k pair, verbatim (same
  // coordinates, same label), and preserves the grid's relative order —
  // the canonical order the scatter/gather layer chunks by.
  const Crystal primitive = silicon_primitive();
  const auto grid = monkhorst_pack(primitive, 2, 3, 2);
  const auto folded = fold_time_reversal(grid);
  std::size_t cursor = 0;
  for (const KPoint& kp : folded) {
    bool found = false;
    for (std::size_t i = cursor; i < grid.size(); ++i) {
      if (grid[i].k.x == kp.k.x && grid[i].k.y == kp.k.y &&
          grid[i].k.z == kp.k.z) {
        cursor = i + 1;
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "folded point not an original grid point in order";
  }
}

TEST(FoldTimeReversalTest, FoldedGridSolvesToSameGapSummary) {
  // The physics behind the fold: H(k) and H(-k) share a spectrum for the
  // real EPM potential, so the folded grid's weighted summary equals the
  // full grid's. The band-energy integral regroups (w*e_k + w*e_{-k}
  // becomes 2w*e_k), so compare to tight tolerance, not bitwise.
  const Crystal primitive = silicon_primitive();
  const PlaneWaveBasis basis(primitive, 4.5);
  const auto grid = monkhorst_pack(primitive, 2, 2, 2);
  const auto folded = fold_time_reversal(grid);
  const auto full_structure = band_structure(basis, grid, 6);
  const auto folded_structure = band_structure(basis, folded, 6);
  const GapSummary full = find_gap(full_structure, 4);
  const GapSummary half = find_gap(folded_structure, 4);
  EXPECT_NEAR(half.vbm_ha, full.vbm_ha, 1e-12);
  EXPECT_NEAR(half.cbm_ha, full.cbm_ha, 1e-12);
  EXPECT_NEAR(half.band_energy_ha, full.band_energy_ha, 1e-12);
  EXPECT_NEAR(half.weight_sum, full.weight_sum, 1e-15);
}

class BandStructureFixture : public ::testing::Test {
 protected:
  BandStructureFixture()
      : primitive(silicon_primitive()), basis(primitive, 4.5) {}

  Crystal primitive;
  PlaneWaveBasis basis;  // 9 Ry: the classic EPM cutoff
};

TEST_F(BandStructureFixture, GammaMatchesGammaOnlySolver) {
  KPoint gamma;
  const BandsAtK at_gamma = solve_epm_at_k(basis, gamma, 8);
  const GroundState reference = solve_epm(basis, 8);
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_NEAR(at_gamma.energies_ha[b], reference.energies_ha[b], 1e-10);
  }
}

TEST_F(BandStructureFixture, BandsAreContinuousAlongPath) {
  const auto path = fcc_kpath(kSiliconLatticeBohr, 8);
  const auto structure = band_structure(basis, path, 6);
  for (std::size_t i = 1; i < structure.size(); ++i) {
    for (std::size_t b = 0; b < 6; ++b) {
      const double jump = std::fabs(structure[i].energies_ha[b] -
                                    structure[i - 1].energies_ha[b]);
      EXPECT_LT(jump * kEvPerHa, 2.5)
          << "band " << b << " jumps at point " << i;
    }
  }
}

TEST_F(BandStructureFixture, SiliconGapsMatchCohenBergstresser) {
  const auto path = fcc_kpath(kSiliconLatticeBohr, 10);
  const auto structure = band_structure(basis, path, 6);
  const GapSummary gap = find_gap(structure, 4);
  // Indirect gap ~0.8-1.2 eV with the CBM away from Gamma.
  EXPECT_GT(gap.indirect_gap_ev(), 0.5);
  EXPECT_LT(gap.indirect_gap_ev(), 1.6);
  EXPECT_EQ(gap.vbm_label, "Gamma");
  EXPECT_NE(gap.cbm_label, "Gamma");
  // Direct gap at Gamma ~3.4 eV.
  for (const BandsAtK& at_k : structure) {
    if (at_k.kpoint.label == "Gamma") {
      const double direct =
          (at_k.energies_ha[4] - at_k.energies_ha[3]) * kEvPerHa;
      EXPECT_GT(direct, 2.8);
      EXPECT_LT(direct, 4.0);
    }
  }
}

TEST_F(BandStructureFixture, ValenceTopIsTripleDegenerateAtGamma) {
  // Diamond structure: the Gamma_25' valence top is threefold degenerate.
  KPoint gamma;
  const BandsAtK at_gamma = solve_epm_at_k(basis, gamma, 6);
  const double top = at_gamma.energies_ha[3];
  EXPECT_NEAR(at_gamma.energies_ha[2], top, 1e-6);
  EXPECT_NEAR(at_gamma.energies_ha[1], top, 1e-6);
  EXPECT_LT(at_gamma.energies_ha[0], top - 0.2);  // Gamma_1 far below
}

TEST_F(BandStructureFixture, MpGridGapMatchesPathGap) {
  // A coarse MP grid sees roughly the same indirect gap as the path scan.
  const auto grid = monkhorst_pack(primitive, 4, 4, 4);
  std::vector<BandsAtK> solved;
  for (const KPoint& kp : grid) {
    solved.push_back(solve_epm_at_k(basis, kp, 6));
  }
  const GapSummary gap = find_gap(solved, 4);
  EXPECT_GT(gap.indirect_gap_ev(), 0.3);
  EXPECT_LT(gap.indirect_gap_ev(), 2.0);
}

TEST_F(BandStructureFixture, BandWindowClampsToBasisSize) {
  // Requesting more bands than the basis holds must clamp, not throw or
  // read past the spectrum.
  KPoint gamma;
  const BandsAtK clamped =
      solve_epm_at_k(basis, gamma, basis.size() + 100);
  EXPECT_EQ(clamped.energies_ha.size(), basis.size());
  const BandsAtK full = solve_epm_at_k(basis, gamma, 0);
  ASSERT_EQ(full.energies_ha.size(), basis.size());
  for (std::size_t b = 0; b < basis.size(); ++b) {
    EXPECT_NEAR(clamped.energies_ha[b], full.energies_ha[b], 1e-10);
  }
}

TEST_F(BandStructureFixture, PartialWindowMatchesFullSpectrum) {
  // The band window runs the partial eigensolver; its energies must
  // match the full solve's lowest entries at every path point.
  const auto path = fcc_kpath(kSiliconLatticeBohr, 3);
  const auto partial = band_structure(basis, path, 6);
  const auto full = band_structure(basis, path, 0);
  ASSERT_EQ(partial.size(), full.size());
  for (std::size_t i = 0; i < partial.size(); ++i) {
    ASSERT_EQ(partial[i].energies_ha.size(), 6u);
    for (std::size_t b = 0; b < 6; ++b) {
      EXPECT_NEAR(partial[i].energies_ha[b], full[i].energies_ha[b], 1e-10)
          << "band " << b << " at point " << i;
    }
  }
}

TEST_F(BandStructureFixture, PoolParallelKLoopBitwiseMatchesSerial) {
  // The k-loop fans out one task per k-point; energies must be bitwise
  // identical to the single-threaded loop for any pool width.
  const auto path = fcc_kpath(kSiliconLatticeBohr, 4);
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original = pool.threads();
  std::vector<std::vector<BandsAtK>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    pool.resize(threads);
    runs.push_back(band_structure(basis, path, 6));
  }
  pool.resize(original);
  for (std::size_t t = 1; t < runs.size(); ++t) {
    for (std::size_t i = 0; i < path.size(); ++i) {
      for (std::size_t b = 0; b < 6; ++b) {
        ASSERT_EQ(runs[0][i].energies_ha[b], runs[t][i].energies_ha[b])
            << "band " << b << " at point " << i << " thread variant " << t;
      }
    }
  }
}

TEST(FoldingTest, SupercellGammaReproducesPrimitiveCosetGap) {
  // Band folding: the 8-atom conventional cell at Gamma spans exactly the
  // primitive cell's {Gamma, X_x, X_y, X_z} cosets, so its 16-valence gap
  // summary must reproduce the primitive 4-valence summary over those
  // k-points. The Gamma-coset block is the identical matrix (VBM agrees
  // to machine precision); the X blocks differ only by the Gamma-centred
  // basis truncation (~2e-4 Ha at 9 Ry).
  const double ecut_ha = 4.5;
  const Crystal super8 = Crystal::silicon_supercell(8);
  const PlaneWaveBasis super_basis(super8, ecut_ha);
  KPoint gamma;
  const BandsAtK folded = solve_epm_at_k(super_basis, gamma, 20);
  const GapSummary folded_gap = find_gap({folded}, 16);

  const Crystal primitive = silicon_primitive();
  const PlaneWaveBasis prim_basis(primitive, ecut_ha);
  const double unit = 2.0 * std::numbers::pi / kSiliconLatticeBohr;
  std::vector<KPoint> cosets(4);
  cosets[1].k = {unit, 0.0, 0.0};
  cosets[2].k = {0.0, unit, 0.0};
  cosets[3].k = {0.0, 0.0, unit};
  const auto solved = band_structure(prim_basis, cosets, 6);
  const GapSummary primitive_gap = find_gap(solved, 4);

  EXPECT_NEAR(folded_gap.vbm_ha, primitive_gap.vbm_ha, 1e-10);
  EXPECT_NEAR(folded_gap.cbm_ha, primitive_gap.cbm_ha, 1e-3);
  EXPECT_NEAR(folded_gap.indirect_gap_ev(),
              primitive_gap.indirect_gap_ev(), 0.03);
}

TEST(FindGapTest, RejectsDegenerateInput) {
  EXPECT_THROW(find_gap({}, 4), NdftError);
  BandsAtK only_valence;
  only_valence.energies_ha = {1.0, 2.0};
  EXPECT_THROW(find_gap({only_valence}, 2), NdftError);
}

TEST(FindGapTest, RejectsZeroValence) {
  // Regression: valence == 0 used to wrap `valence - 1` to SIZE_MAX and
  // read energies_ha out of bounds; it must throw instead.
  BandsAtK at_k;
  at_k.energies_ha = {1.0, 2.0, 3.0};
  EXPECT_THROW(find_gap({at_k}, 0), NdftError);
}

TEST(FindGapTest, WeightsFlowIntoBandEnergy) {
  // Two k-points with different weights: the summary integrates
  // 2 * sum of occupied energies against the normalised weights.
  BandsAtK heavy;
  heavy.kpoint.weight = 0.75;
  heavy.energies_ha = {-1.0, 2.0};
  BandsAtK light;
  light.kpoint.weight = 0.25;
  light.energies_ha = {-3.0, 1.0};
  const GapSummary gap = find_gap({heavy, light}, 1);
  EXPECT_NEAR(gap.weight_sum, 1.0, 1e-15);
  // 0.75 * 2 * (-1) + 0.25 * 2 * (-3) = -3.0.
  EXPECT_NEAR(gap.band_energy_ha, -3.0, 1e-12);
  EXPECT_NEAR(gap.vbm_ha, -1.0, 1e-15);
  EXPECT_NEAR(gap.cbm_ha, 1.0, 1e-15);
}

}  // namespace
}  // namespace ndft::dft
