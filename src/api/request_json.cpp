#include "api/request_json.hpp"

#include "common/kernel_trace.hpp"

namespace ndft::api {
namespace {

// ---- enum <-> string maps. The names mirror the result serializer's
// (api/result.cpp) so requests and results speak one vocabulary.

const char* sampling_name(BandStructureJob::Sampling sampling) {
  switch (sampling) {
    case BandStructureJob::Sampling::kPath: return "path";
    case BandStructureJob::Sampling::kMonkhorstPack: return "monkhorst_pack";
    case BandStructureJob::Sampling::kExplicit: return "explicit";
  }
  return "?";
}

BandStructureJob::Sampling sampling_from(const std::string& name) {
  if (name == "path") return BandStructureJob::Sampling::kPath;
  if (name == "monkhorst_pack") {
    return BandStructureJob::Sampling::kMonkhorstPack;
  }
  if (name == "explicit") return BandStructureJob::Sampling::kExplicit;
  throw NdftError("unknown sampling: " + name);
}

const char* mixing_name(dft::MixingScheme scheme) {
  return scheme == dft::MixingScheme::kLinear ? "linear" : "anderson";
}

dft::MixingScheme mixing_from(const std::string& name) {
  if (name == "linear") return dft::MixingScheme::kLinear;
  if (name == "anderson") return dft::MixingScheme::kAnderson;
  throw NdftError("unknown mixing scheme: " + name);
}

core::ExecMode exec_mode_from(const std::string& name) {
  for (const core::ExecMode mode :
       {core::ExecMode::kCpuBaseline, core::ExecMode::kGpuBaseline,
        core::ExecMode::kNdpOnly, core::ExecMode::kNdft}) {
    if (name == core::to_string(mode)) return mode;
  }
  throw NdftError("unknown execution mode: " + name);
}

const char* granularity_name(runtime::Granularity granularity) {
  switch (granularity) {
    case runtime::Granularity::kInstruction: return "instruction";
    case runtime::Granularity::kBasicBlock: return "block";
    case runtime::Granularity::kFunction: return "function";
    case runtime::Granularity::kKernel: return "kernel";
  }
  return "?";
}

runtime::Granularity granularity_from(const std::string& name) {
  for (const runtime::Granularity g :
       {runtime::Granularity::kInstruction, runtime::Granularity::kBasicBlock,
        runtime::Granularity::kFunction, runtime::Granularity::kKernel}) {
    if (name == granularity_name(g)) return g;
  }
  throw NdftError("unknown granularity: " + name);
}

// ---- optional-member readers: absent keys keep the struct default.

void read(const Json& j, const char* key, double& out) {
  if (const Json* v = j.find(key)) out = v->as_double();
}

void read(const Json& j, const char* key, bool& out) {
  if (const Json* v = j.find(key)) out = v->as_bool();
}

void read(const Json& j, const char* key, std::size_t& out) {
  if (const Json* v = j.find(key)) out = v->as_uint();
}

void read(const Json& j, const char* key, unsigned& out) {
  if (const Json* v = j.find(key)) {
    out = static_cast<unsigned>(v->as_uint());
  }
}

// ---- per-kind serializers.

Json to_json(const ScfJob& job) {
  Json j = Json::object();
  j.set("atoms", job.atoms);
  j.set("ecut_ry", job.ecut_ry);
  Json scf = Json::object();
  scf.set("max_iterations", job.scf.max_iterations);
  scf.set("mixing", job.scf.mixing);
  scf.set("scheme", mixing_name(job.scf.scheme));
  scf.set("tolerance", job.scf.tolerance);
  scf.set("bands", job.scf.bands);
  scf.set("valence_charge", job.scf.valence_charge);
  scf.set("core_radius_bohr", job.scf.core_radius_bohr);
  j.set("scf", std::move(scf));
  j.set("record_trace", job.record_trace);
  j.set("deadline_ms", job.deadline_ms);
  return j;
}

ScfJob scf_from_json(const Json& j) {
  ScfJob job;
  read(j, "atoms", job.atoms);
  read(j, "ecut_ry", job.ecut_ry);
  if (const Json* scf = j.find("scf")) {
    read(*scf, "max_iterations", job.scf.max_iterations);
    read(*scf, "mixing", job.scf.mixing);
    if (const Json* scheme = scf->find("scheme")) {
      job.scf.scheme = mixing_from(scheme->as_string());
    }
    read(*scf, "tolerance", job.scf.tolerance);
    read(*scf, "bands", job.scf.bands);
    read(*scf, "valence_charge", job.scf.valence_charge);
    read(*scf, "core_radius_bohr", job.scf.core_radius_bohr);
  }
  read(j, "record_trace", job.record_trace);
  read(j, "deadline_ms", job.deadline_ms);
  return job;
}

Json to_json(const BandStructureJob& job) {
  Json j = Json::object();
  j.set("atoms", job.atoms);
  j.set("ecut_ry", job.ecut_ry);
  j.set("sampling", sampling_name(job.sampling));
  j.set("segments", job.segments);
  Json grid = Json::array();
  for (const unsigned n : job.mp_grid) grid.push_back(n);
  j.set("mp_grid", std::move(grid));
  // Additive since the scatter/gather layer: the explicit list is only
  // emitted when present, so pre-sharding documents dump unchanged.
  if (!job.kpoints.empty()) {
    Json list = Json::array();
    for (const BandStructureJob::KPointSpec& kp : job.kpoints) {
      Json point = Json::object();
      Json coords = Json::array();
      for (const double c : kp.k) coords.push_back(c);
      point.set("k", std::move(coords));
      point.set("weight", kp.weight);
      point.set("label", kp.label);
      list.push_back(std::move(point));
    }
    j.set("kpoints", std::move(list));
  }
  j.set("bands", job.bands);
  j.set("valence_bands", job.valence_bands);
  j.set("record_trace", job.record_trace);
  j.set("deadline_ms", job.deadline_ms);
  return j;
}

BandStructureJob bands_from_json(const Json& j) {
  BandStructureJob job;
  read(j, "atoms", job.atoms);
  read(j, "ecut_ry", job.ecut_ry);
  if (const Json* sampling = j.find("sampling")) {
    job.sampling = sampling_from(sampling->as_string());
  }
  read(j, "segments", job.segments);
  if (const Json* grid = j.find("mp_grid")) {
    NDFT_REQUIRE(grid->size() == 3, "mp_grid must have 3 entries");
    for (std::size_t i = 0; i < 3; ++i) {
      job.mp_grid[i] = static_cast<unsigned>((*grid)[i].as_uint());
    }
  }
  if (const Json* list = j.find("kpoints")) {
    for (const Json& point : list->items()) {
      BandStructureJob::KPointSpec kp;
      const Json& coords = point.at("k");
      NDFT_REQUIRE(coords.size() == 3, "kpoints entries need 3 coordinates");
      for (std::size_t i = 0; i < 3; ++i) {
        kp.k[i] = coords[i].as_double();
      }
      read(point, "weight", kp.weight);
      if (const Json* label = point.find("label")) {
        kp.label = label->as_string();
      }
      job.kpoints.push_back(std::move(kp));
    }
  }
  read(j, "bands", job.bands);
  read(j, "valence_bands", job.valence_bands);
  read(j, "record_trace", job.record_trace);
  read(j, "deadline_ms", job.deadline_ms);
  return job;
}

Json to_json(const LrtddftJob& job) {
  Json j = Json::object();
  j.set("atoms", job.atoms);
  j.set("ecut_ry", job.ecut_ry);
  Json config = Json::object();
  config.set("valence_window", job.config.valence_window);
  config.set("conduction_window", job.config.conduction_window);
  config.set("include_xc", job.config.include_xc);
  config.set("spin_factor", job.config.spin_factor);
  config.set("keep_eigenvectors", job.config.keep_eigenvectors);
  j.set("config", std::move(config));
  j.set("oscillator_strengths", job.oscillator_strengths);
  j.set("record_trace", job.record_trace);
  j.set("deadline_ms", job.deadline_ms);
  return j;
}

LrtddftJob lrtddft_from_json(const Json& j) {
  LrtddftJob job;
  read(j, "atoms", job.atoms);
  read(j, "ecut_ry", job.ecut_ry);
  if (const Json* config = j.find("config")) {
    read(*config, "valence_window", job.config.valence_window);
    read(*config, "conduction_window", job.config.conduction_window);
    read(*config, "include_xc", job.config.include_xc);
    read(*config, "spin_factor", job.config.spin_factor);
    read(*config, "keep_eigenvectors", job.config.keep_eigenvectors);
  }
  read(j, "oscillator_strengths", job.oscillator_strengths);
  read(j, "record_trace", job.record_trace);
  read(j, "deadline_ms", job.deadline_ms);
  return job;
}

Json to_json(const SimulateJob& job) {
  Json j = Json::object();
  j.set("atoms", job.atoms);
  j.set("mode", core::to_string(job.mode));
  j.set("sampled_ops", job.sampled_ops);
  // The machine document travels verbatim (it has its own schema tag);
  // absent = engine default hardware, so round-trips stay additive.
  if (job.machine) j.set("machine", *job.machine);
  j.set("record_trace", job.record_trace);
  j.set("deadline_ms", job.deadline_ms);
  return j;
}

SimulateJob simulate_from_json(const Json& j) {
  SimulateJob job;
  read(j, "atoms", job.atoms);
  if (const Json* mode = j.find("mode")) {
    job.mode = exec_mode_from(mode->as_string());
  }
  read(j, "sampled_ops", job.sampled_ops);
  if (const Json* machine = j.find("machine")) job.machine = *machine;
  read(j, "record_trace", job.record_trace);
  read(j, "deadline_ms", job.deadline_ms);
  return job;
}

// DeviceProfile JSON lives with the type (runtime/device_profile.cpp):
// the wire schema and the on-disk profile store share one format.

Json to_json(const PlanJob& job) {
  Json j = Json::object();
  j.set("atoms", job.atoms);
  j.set("granularity", granularity_name(job.granularity));
  Json profiles = Json::array();
  for (const runtime::DeviceProfile& profile : job.profile_override) {
    profiles.push_back(profile.to_json());
  }
  j.set("profile_override", std::move(profiles));
  if (job.machine) j.set("machine", *job.machine);
  j.set("deadline_ms", job.deadline_ms);
  return j;
}

PlanJob plan_from_json(const Json& j) {
  PlanJob job;
  read(j, "atoms", job.atoms);
  if (const Json* granularity = j.find("granularity")) {
    job.granularity = granularity_from(granularity->as_string());
  }
  if (const Json* profiles = j.find("profile_override")) {
    for (const Json& profile : profiles->items()) {
      job.profile_override.push_back(
          runtime::DeviceProfile::from_json(profile));
    }
  }
  if (const Json* machine = j.find("machine")) job.machine = *machine;
  read(j, "deadline_ms", job.deadline_ms);
  return job;
}

Json to_json(const CoDesignJob& job) {
  Json j = Json::object();
  j.set("trace", job.trace.to_json());
  j.set("granularity", granularity_name(job.granularity));
  j.set("calibrate", job.calibrate);
  j.set("simulate", job.simulate);
  if (job.machine) j.set("machine", *job.machine);
  j.set("deadline_ms", job.deadline_ms);
  return j;
}

CoDesignJob codesign_from_json(const Json& j) {
  CoDesignJob job;
  // The trace is the job's entire subject: unlike the tuning knobs it is
  // required, and it carries its own versioned schema.
  job.trace = KernelTrace::from_json(j.at("trace"));
  if (const Json* granularity = j.find("granularity")) {
    job.granularity = granularity_from(granularity->as_string());
  }
  read(j, "calibrate", job.calibrate);
  read(j, "simulate", job.simulate);
  if (const Json* machine = j.find("machine")) job.machine = *machine;
  read(j, "deadline_ms", job.deadline_ms);
  return job;
}

}  // namespace

const char* const kJobRequestSchema = "ndft.job_request.v1";

Json job_request_to_json(const JobRequest& request) {
  Json j = Json::object();
  j.set("schema", kJobRequestSchema);
  j.set("kind", job_kind(request));
  struct Serializer {
    Json operator()(const ScfJob& job) const { return to_json(job); }
    Json operator()(const BandStructureJob& job) const { return to_json(job); }
    Json operator()(const LrtddftJob& job) const { return to_json(job); }
    Json operator()(const SimulateJob& job) const { return to_json(job); }
    Json operator()(const PlanJob& job) const { return to_json(job); }
    Json operator()(const CoDesignJob& job) const { return to_json(job); }
  };
  j.set("job", std::visit(Serializer{}, request));
  return j;
}

JobRequest job_request_from_json(const Json& json) {
  NDFT_REQUIRE(json.is_object(), "job request must be a JSON object");
  const std::string schema = json.at("schema").as_string();
  NDFT_REQUIRE(schema == kJobRequestSchema,
               ("unsupported schema: " + schema).c_str());
  const std::string kind = json.at("kind").as_string();
  const Json& job = json.at("job");
  NDFT_REQUIRE(job.is_object(), "'job' must be a JSON object");
  if (kind == "scf") return scf_from_json(job);
  if (kind == "band_structure") return bands_from_json(job);
  if (kind == "lrtddft") return lrtddft_from_json(job);
  if (kind == "simulate") return simulate_from_json(job);
  if (kind == "plan") return plan_from_json(job);
  if (kind == "codesign") return codesign_from_json(job);
  throw NdftError("unknown job kind: " + kind);
}

}  // namespace ndft::api
