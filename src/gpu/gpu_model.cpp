#include "gpu/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ndft::gpu {

GpuConfig GpuConfig::dgx1_v100x2() {
  return GpuConfig{};  // defaults encode the DGX-1 pair of V100s
}

const KernelEfficiency& GpuConfig::efficiency(
    KernelClass kernel_class) const {
  switch (kernel_class) {
    case KernelClass::kFft: return fft;
    case KernelClass::kGemm: return gemm;
    case KernelClass::kSyevd: return syevd;
    case KernelClass::kFaceSplit: return face_split;
    case KernelClass::kPseudopotential: return pseudopotential;
    case KernelClass::kAlltoall: return alltoall;
    case KernelClass::kOther: return other;
  }
  return other;
}

TimePs GpuModel::transfer(Bytes bytes) const {
  if (bytes == 0) {
    return 0;
  }
  return transfer_time_ps(bytes, config_.pcie_gbps);
}

TimePs GpuModel::peer_transfer(Bytes bytes) const {
  if (bytes == 0) {
    return 0;
  }
  return transfer_time_ps(bytes, config_.nvlink_gbps);
}

GpuStepTime GpuModel::execute(KernelClass kernel_class, Flops flops,
                              Bytes device_bytes, Bytes h2d_bytes,
                              Bytes d2h_bytes) const {
  const KernelEfficiency& eff = config_.efficiency(kernel_class);
  NDFT_ASSERT(eff.compute > 0.0 && eff.memory > 0.0);

  GpuStepTime t;
  t.h2d = transfer(h2d_bytes);
  t.d2h = transfer(d2h_bytes);

  // flops / (GFLOP/s) = nanoseconds; bytes / (bytes/ps) = picoseconds.
  const double compute_ns = static_cast<double>(flops) /
                            (config_.peak_gflops * eff.compute);
  const double memory_ps =
      static_cast<double>(device_bytes) /
      gbps_to_bytes_per_ps(config_.mem_gbps * eff.memory);
  // Roofline: bound by the slower of the two.
  const double exec_ps = std::max(compute_ns * 1000.0, memory_ps);
  t.kernel = config_.kernel_launch_ps +
             static_cast<TimePs>(std::llround(exec_ps));
  return t;
}

}  // namespace ndft::gpu
