#include "net/server.hpp"

#include <utility>

#include "common/fault.hpp"

namespace ndft::net {

HttpServer::HttpServer(ServerConfig config, HttpHandler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  NDFT_REQUIRE(handler_ != nullptr, "HttpServer needs a handler");
}

HttpServer::~HttpServer() { shutdown(); }

void HttpServer::start() {
  NDFT_REQUIRE(!running_.load() && !stopping_.load(),
               "HttpServer::start called twice");
  listener_ = Listener(config_.bind_address, config_.port);
  port_ = listener_.port();
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::shutdown() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads observe stopping_ between requests (and between
  // read slices) and wind down; join them all.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void HttpServer::reap_finished() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    Socket socket = listener_.accept(/*timeout_ms=*/100.0);
    if (!socket.valid()) {
      reap_finished();
      continue;
    }
    connections_accepted_.fetch_add(1);
    if (fault_fires("net.accept")) {
      connections_dropped_.fetch_add(1);
      continue;  // Socket destructor closes the connection
    }
    reap_finished();
    if (live_connections_.load() >= config_.max_connections) {
      // Over capacity: tell the client explicitly rather than hanging.
      HttpResponse busy;
      busy.status = 503;
      busy.headers.emplace_back("Content-Type", "text/plain");
      busy.body = "server at connection capacity\n";
      try {
        socket.send_all(busy.serialize(/*keep_alive=*/false));
      } catch (const NdftError&) {
      }
      connections_dropped_.fetch_add(1);
      continue;
    }
    live_connections_.fetch_add(1);
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread(
        [this, raw](Socket sock) {
          serve_connection(std::move(sock));
          live_connections_.fetch_sub(1);
          raw->done.store(true);
        },
        std::move(socket));
  }
}

void HttpServer::serve_connection(Socket socket) {
  HttpParser parser(HttpParser::Kind::kRequest, config_.limits);
  const std::string client = socket.peer_address();
  char buf[8192];
  double idle_ms = 0.0;
  try {
    while (!stopping_.load()) {
      // Read in short slices so a shutdown is observed within ~100ms
      // even while blocked on an idle keep-alive connection.
      const long n = socket.recv_some(buf, sizeof(buf), /*timeout_ms=*/100.0);
      if (n == 0) return;  // peer closed
      if (n < 0) {
        idle_ms += 100.0;
        if (idle_ms >= config_.io_timeout_ms) return;
        continue;
      }
      idle_ms = 0.0;
      parser.feed(buf, static_cast<std::size_t>(n));
      // Drain every complete message in the buffer (pipelining).
      while (parser.state() == HttpParser::State::kDone) {
        HttpRequest request = parser.request();
        request.client = client;
        const std::string pipelined = parser.remainder();
        parser.reset();
        parser.feed(pipelined);

        HttpResponse response;
        try {
          response = handler_(request);
        } catch (const std::exception& e) {
          response = HttpResponse();
          response.status = 500;
          response.headers.emplace_back("Content-Type", "text/plain");
          response.body = std::string("internal error: ") + e.what() + "\n";
        }
        const bool keep = request.keep_alive() && !stopping_.load();
        requests_served_.fetch_add(1);
        socket.send_all(response.serialize(keep));
        if (!keep) return;
      }
      if (parser.state() == HttpParser::State::kError) {
        HttpResponse response;
        response.status = parser.error_status();
        response.headers.emplace_back("Content-Type", "text/plain");
        response.body = parser.error_detail() + "\n";
        requests_served_.fetch_add(1);
        socket.send_all(response.serialize(/*keep_alive=*/false));
        return;  // framing is unrecoverable after a parse error
      }
    }
  } catch (const NdftError&) {
    // Socket-level failure (peer reset mid-write, ...): drop the
    // connection; the client observes the close and may retry.
  }
}

}  // namespace ndft::net
