// Reproduces Figure 4: roofline placement of the LR-TDDFT kernels on the
// CPU for the small (Si_64) and large (Si_1024) systems. For each kernel
// we report arithmetic intensity (flop per DRAM byte), the achieved
// GFLOP/s from the timing simulation, and the memory/compute-bound
// verdict of the static code analyzer.

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"
#include "runtime/sca.hpp"

using namespace ndft;

namespace {

void roofline_for(const core::NdftSystem& system, std::size_t atoms) {
  const dft::Workload workload = system.workload_for(atoms);
  const core::RunReport cpu =
      system.run(workload, core::ExecMode::kCpuBaseline);
  const runtime::DeviceProfile profile =
      runtime::DeviceProfile::xeon_baseline();
  const runtime::Sca sca(profile, system.config().ndp_profile);

  std::printf("--- Si_%zu (machine balance %.1f flop/byte, peak %.0f "
              "GFLOP/s, %.0f GB/s) ---\n",
              atoms, profile.balance(), profile.peak_gflops,
              profile.dram_gbps);
  TextTable table(
      {"kernel", "AI (flop/B)", "achieved GFLOP/s", "bound (SCA)"});
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    const dft::KernelWork& k = workload.kernels[i];
    if (k.flops == 0) {
      continue;  // Alltoall carries no FP work; it has no roofline point
    }
    const TimePs t = cpu.kernels[i].time_ps;
    const double gflops =
        t == 0 ? 0.0
               : static_cast<double>(k.flops) / static_cast<double>(t) *
                     1000.0;  // flops/ps -> GFLOP/s
    const runtime::KernelAnalysis a = sca.analyze(k);
    table.add_row({k.name, strformat("%.3f", k.arithmetic_intensity()),
                   strformat("%.1f", gflops),
                   a.on_cpu == runtime::Boundedness::kComputeBound
                       ? "compute"
                       : "memory"});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("Fig. 4 reproduction: roofline analysis of LR-TDDFT kernels\n");
  std::printf("(paper: FFT & face-splitting memory-bound at all sizes; GEMM "
              "compute-bound;\n SYEVD memory-bound small -> compute-bound "
              "large)\n\n");
  const core::NdftSystem system;
  roofline_for(system, 64);
  roofline_for(system, 1024);
  return 0;
}
